#include "dsrt/system/process_manager.hpp"

#include <stdexcept>
#include <utility>

namespace dsrt::system {

ProcessManager::ProcessManager(sim::Simulator& sim,
                               std::vector<std::unique_ptr<sched::Node>>& nodes,
                               core::SerialStrategyPtr ssp,
                               core::ParallelStrategyPtr psp,
                               RunMetrics& metrics,
                               const core::LoadModel* load_model,
                               const core::PlacementPolicy* placement)
    : sim_(sim),
      nodes_(nodes),
      ssp_(std::move(ssp)),
      psp_(std::move(psp)),
      metrics_(metrics),
      load_model_(load_model),
      placement_(placement),
      feedback_(dynamic_cast<const core::SubtaskFeedback*>(psp_.get())) {
  // Steady-state hot path: keep the per-disposal scratch buffers out of
  // the allocator (they only grow at new high-water marks).
  scratch_.reserve(16);
  disposal_queue_.reserve(32);
  instances_.reserve(256);
  for (auto& node : nodes_) {
    node->set_completion_handler(
        [this](const sched::Job& job, sim::Time now,
               sched::JobOutcome outcome) { on_disposed(job, now, outcome); });
  }
}

void ProcessManager::submit_local(core::NodeId node, double exec, double pex,
                                  sim::Time deadline) {
  if (node >= nodes_.size())
    throw std::out_of_range("submit_local: bad node id");
  ++metrics_.local.generated;
  sched::Job job;
  job.id = next_job_id_++;
  job.cls = core::TaskClass::Local;
  job.priority = core::PriorityClass::Normal;
  job.task = 0;
  job.node = node;
  job.deadline = deadline;
  job.ultimate_deadline = deadline;
  job.exec = exec;
  job.pex = pex;
  if (observer_) observer_->on_local_submitted(node, job, sim_.now());
  nodes_[node]->submit(std::move(job));
}

void ProcessManager::submit_global(const core::TaskSpec& spec,
                                   sim::Time deadline) {
  ++metrics_.global.generated;
  const core::TaskId id = next_task_id_++;
  auto [it, inserted] = instances_.try_emplace(
      id, id, spec, sim_.now(), deadline, ssp_, psp_, load_model_,
      placement_);
  (void)inserted;
  if (observer_) observer_->on_global_arrival(id, spec, sim_.now(), deadline);
  scratch_.clear();
  it->second.start(sim_.now(), scratch_);
  dispatch_submissions(id, scratch_);
}

void ProcessManager::dispatch_submissions(
    core::TaskId task, const std::vector<core::LeafSubmission>& subs) {
  if (subs.empty()) return;
  const auto inst_it = instances_.find(task);
  const sim::Time ultimate = inst_it != instances_.end()
                                 ? inst_it->second.deadline()
                                 : sim::kTimeInfinity;
  for (const auto& sub : subs) {
    if (sub.node >= nodes_.size())
      throw std::out_of_range("global subtask: bad node id");
    sched::Job job;
    job.id = next_job_id_++;
    job.cls = core::TaskClass::Global;
    job.priority = sub.priority;
    job.task = task;
    job.leaf = static_cast<std::uint32_t>(sub.leaf);
    job.node = sub.node;
    job.deadline = sub.deadline;
    job.ultimate_deadline = ultimate;
    job.exec = sub.exec;
    job.pex = sub.pex;
    if (observer_) observer_->on_subtask_submitted(task, sub, sim_.now());
    nodes_[sub.node]->submit(std::move(job));
  }
}

void ProcessManager::on_disposed(const sched::Job& job, sim::Time now,
                                 sched::JobOutcome outcome) {
  if (draining_disposals_) {
    // Re-entrant disposal (a submission below disposed synchronously):
    // queue it for the outer drain loop.
    disposal_queue_.push_back(Disposal{job, now, outcome});
    return;
  }
  draining_disposals_ = true;
  // Common case: handle the disposal in place (no queue round-trip), then
  // drain whatever it spawned. Index-based loop: handle_disposal may
  // append to the queue.
  handle_disposal(Disposal{job, now, outcome});
  for (std::size_t i = 0; i < disposal_queue_.size(); ++i) {
    const Disposal d = disposal_queue_[i];
    handle_disposal(d);
  }
  disposal_queue_.clear();
  draining_disposals_ = false;
}

void ProcessManager::handle_disposal(const Disposal& d) {
  const sched::Job& job = d.job;
  const sim::Time now = d.at;
  const sched::JobOutcome outcome = d.outcome;
  if (observer_) observer_->on_job_disposed(job, now, outcome);
  if (job.cls == core::TaskClass::Local) {
    if (outcome == sched::JobOutcome::Aborted) {
      metrics_.local.record_aborted();
    } else {
      metrics_.local_wait.add(now - job.release - job.exec);
      metrics_.local.record_completed(/*response=*/now - job.release,
                                      /*lateness=*/now - job.deadline);
    }
    return;
  }

  // Online feedback for adaptive strategies: subtask lateness relative to
  // the *virtual* deadline, in simulated disposal order (deterministic).
  if (feedback_)
    feedback_->on_subtask_disposed(now - job.deadline,
                                   outcome == sched::JobOutcome::Completed);

  const auto it = instances_.find(job.task);
  if (it == instances_.end())
    throw std::logic_error("global job completion for unknown instance");
  core::TaskInstance& inst = it->second;

  if (outcome == sched::JobOutcome::Aborted &&
      inst.state() == core::InstanceState::Running) {
    // A discarded subtask dooms its global task: record the miss once and
    // stop issuing further stages. Already-queued sibling subtasks drain
    // silently below.
    inst.abort();
    metrics_.global.record_aborted();
    if (observer_) observer_->on_global_aborted(job.task, now);
  }

  if (outcome == sched::JobOutcome::Completed)
    metrics_.subtask_wait.add(now - job.release - job.exec);

  scratch_.clear();
  const bool task_done = inst.on_leaf_complete(job.leaf, now, scratch_);
  // Submissions may dispose synchronously (idle node + abort policy), but
  // such disposals only enqueue onto disposal_queue_ while draining, so
  // `inst` and `it` stay valid through this call.
  dispatch_submissions(job.task, scratch_);
  if (task_done) finish_global(inst, now);
  if (inst.state() != core::InstanceState::Running && inst.drained())
    instances_.erase(it);
}

void ProcessManager::finish_global(core::TaskInstance& inst, sim::Time now) {
  metrics_.global.record_completed(/*response=*/now - inst.arrival(),
                                   /*lateness=*/now - inst.deadline());
  if (observer_)
    observer_->on_global_finished(inst.id(), now, now > inst.deadline());
}

}  // namespace dsrt::system
