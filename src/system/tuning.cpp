#include "dsrt/system/tuning.hpp"

#include <cmath>
#include <stdexcept>

#include "dsrt/core/parallel_strategies.hpp"
#include "dsrt/system/experiment.hpp"

namespace dsrt::system {

namespace {

struct Probe {
  double md_local;
  double md_global;
  double gap;
};

Probe probe_at(Config& config, double x, std::size_t replications) {
  config.psp = core::make_div_x(x);
  const ExperimentResult r = run_replications(config, replications);
  return {r.md_local.mean, r.md_global.mean,
          r.md_global.mean - r.md_local.mean};
}

}  // namespace

DivXTuneResult tune_div_x(Config config, std::size_t replications,
                          double x_lo, double x_hi, std::size_t max_probes,
                          double gap_tolerance) {
  if (!(x_lo > 0) || !(x_hi > x_lo))
    throw std::invalid_argument("tune_div_x: need 0 < x_lo < x_hi");
  if (replications == 0)
    throw std::invalid_argument("tune_div_x: zero replications");
  if (max_probes < 2)
    throw std::invalid_argument("tune_div_x: need at least 2 probes");

  DivXTuneResult result;
  auto record = [&](double x, const Probe& p) {
    ++result.evaluations;
    result.probes.emplace_back(x, p.gap);
  };
  auto adopt = [&](double x, const Probe& p) {
    result.x = x;
    result.md_local = p.md_local;
    result.md_global = p.md_global;
    result.gap = p.gap;
  };

  // Bisection in log-x space (the effect of x is roughly multiplicative).
  const Probe at_lo = probe_at(config, x_lo, replications);
  record(x_lo, at_lo);
  if (at_lo.gap <= 0) {  // even minimal promotion overshoots
    adopt(x_lo, at_lo);
    return result;
  }
  const Probe at_hi = probe_at(config, x_hi, replications);
  record(x_hi, at_hi);
  if (at_hi.gap >= 0) {  // maximal promotion still leaves globals behind
    adopt(x_hi, at_hi);
    return result;
  }

  double lo = std::log(x_lo), hi = std::log(x_hi);
  adopt(x_hi, at_hi);
  while (result.evaluations < max_probes) {
    const double mid = 0.5 * (lo + hi);
    const double x = std::exp(mid);
    const Probe p = probe_at(config, x, replications);
    record(x, p);
    if (std::abs(p.gap) <= std::abs(result.gap)) adopt(x, p);
    if (std::abs(p.gap) <= gap_tolerance) break;
    if (p.gap > 0)
      lo = mid;  // globals still worse off: promote harder
    else
      hi = mid;
  }
  return result;
}

}  // namespace dsrt::system
