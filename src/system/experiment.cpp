#include "dsrt/system/experiment.hpp"

#include <stdexcept>

#include "dsrt/system/simulation.hpp"

namespace dsrt::system {

ExperimentResult aggregate_runs(std::vector<RunMetrics> runs,
                                double confidence) {
  if (runs.empty())
    throw std::invalid_argument("aggregate_runs: no replications");
  ExperimentResult result;

  std::vector<double> md_local, md_global, md_overall;
  std::vector<double> resp_local, resp_global, util;
  for (const RunMetrics& m : runs) {
    md_local.push_back(m.local.missed.value());
    md_global.push_back(m.global.missed.value());
    const auto trials = m.local.missed.trials() + m.global.missed.trials();
    const auto hits = m.local.missed.hits() + m.global.missed.hits();
    md_overall.push_back(
        trials == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(trials));
    resp_local.push_back(m.local.response.mean());
    resp_global.push_back(m.global.response.mean());
    util.push_back(m.mean_utilization);
  }
  result.runs = std::move(runs);
  for (const RunMetrics& m : result.runs) result.counters.merge(m.counters);

  result.md_local = stats::replication_estimate(md_local, confidence);
  result.md_global = stats::replication_estimate(md_global, confidence);
  result.md_overall = stats::replication_estimate(md_overall, confidence);
  result.response_local = stats::replication_estimate(resp_local, confidence);
  result.response_global =
      stats::replication_estimate(resp_global, confidence);
  result.utilization = stats::replication_estimate(util, confidence);
  return result;
}

ExperimentResult run_replications(const Config& config,
                                  std::size_t replications,
                                  double confidence) {
  if (replications == 0)
    throw std::invalid_argument("run_replications: zero replications");
  std::vector<RunMetrics> runs;
  runs.reserve(replications);
  for (std::size_t r = 0; r < replications; ++r)
    runs.push_back(simulate(config, r));
  return aggregate_runs(std::move(runs), confidence);
}

}  // namespace dsrt::system
