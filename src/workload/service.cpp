#include "dsrt/workload/service.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "dsrt/util/flags.hpp"

namespace dsrt::workload {

namespace {

std::string format_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

[[noreturn]] void throw_unknown_kind(std::string_view text) {
  std::string msg = "ServiceSpec: unknown service sampler '";
  msg += text;
  msg += "' (expected one of: ";
  bool first = true;
  for (std::string_view name : service_kind_names()) {
    if (!first) msg += ", ";
    first = false;
    msg += name;
  }
  msg += ")";
  throw std::invalid_argument(msg);
}

double parse_num(std::string_view what, const std::string& text) {
  const auto v = util::parse_double(text);
  if (!v)
    throw std::invalid_argument("ServiceSpec: bad " + std::string(what) +
                                " '" + text + "'");
  return *v;
}

}  // namespace

ServiceSpec ServiceSpec::parse(std::string_view text) {
  const std::string s(text);
  const auto colon = s.find(':');
  const std::string kind = s.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? std::string() : s.substr(colon + 1);

  ServiceSpec spec;
  if (kind == "exp" || kind == "const") {
    if (!arg.empty())
      throw std::invalid_argument("ServiceSpec: " + kind +
                                  " takes no parameters");
    spec.kind = kind == "exp" ? ServiceKind::Exp : ServiceKind::Const;
  } else if (kind == "erlang") {
    spec.kind = ServiceKind::Erlang;
    spec.param = parse_num("erlang stage count", arg);
  } else if (kind == "h2") {
    spec.kind = ServiceKind::H2;
    spec.param = parse_num("h2 scv", arg);
  } else if (kind == "pareto") {
    spec.kind = ServiceKind::Pareto;
    spec.param = parse_num("pareto alpha", arg);
  } else if (kind == "lognormal") {
    spec.kind = ServiceKind::LogNormal;
    spec.param = parse_num("lognormal sigma", arg);
  } else {
    throw_unknown_kind(kind);
  }
  spec.validate();
  return spec;
}

std::string ServiceSpec::describe() const {
  switch (kind) {
    case ServiceKind::Exp:
      return "exp";
    case ServiceKind::Const:
      return "const";
    case ServiceKind::Erlang:
      return "erlang:" + format_double(param);
    case ServiceKind::H2:
      return "h2:" + format_double(param);
    case ServiceKind::Pareto:
      return "pareto:" + format_double(param);
    case ServiceKind::LogNormal:
      return "lognormal:" + format_double(param);
  }
  return "exp";  // unreachable
}

void ServiceSpec::validate() const {
  switch (kind) {
    case ServiceKind::Exp:
    case ServiceKind::Const:
      break;
    case ServiceKind::Erlang:
      if (param < 1 || param != std::floor(param))
        throw std::invalid_argument(
            "ServiceSpec: erlang stage count must be an integer >= 1");
      break;
    case ServiceKind::H2:
      if (param < 1)
        throw std::invalid_argument("ServiceSpec: h2 scv must be >= 1");
      break;
    case ServiceKind::Pareto:
      if (param <= 1)
        throw std::invalid_argument(
            "ServiceSpec: pareto alpha must be > 1 (finite mean)");
      break;
    case ServiceKind::LogNormal:
      if (param <= 0)
        throw std::invalid_argument(
            "ServiceSpec: lognormal sigma must be positive");
      break;
  }
}

sim::DistributionPtr ServiceSpec::make(double mean) const {
  if (mean <= 0)
    throw std::invalid_argument("ServiceSpec::make: mean must be positive");
  validate();
  switch (kind) {
    case ServiceKind::Exp:
      return sim::exponential(mean);
    case ServiceKind::Const:
      return sim::constant(mean);
    case ServiceKind::Erlang:
      return sim::erlang(static_cast<unsigned>(param), mean);
    case ServiceKind::H2:
      return sim::hyperexponential(mean, param);
    case ServiceKind::Pareto:
      return sim::pareto(param, mean);
    case ServiceKind::LogNormal:
      return sim::lognormal(param, mean);
  }
  throw std::invalid_argument("ServiceSpec::make: unknown kind");
}

std::vector<std::string_view> service_kind_names() {
  return {"exp", "const", "erlang", "h2", "pareto", "lognormal"};
}

}  // namespace dsrt::workload
