#include "dsrt/workload/trace_io.hpp"

#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <stdexcept>
#include <utility>

#include "dsrt/util/flags.hpp"

namespace dsrt::workload {

namespace {

constexpr char kHeader[] = "# dsrt workload trace v1";

/// %a round-trips doubles exactly; the format never emits the separators
/// the trace grammar keys on (commas, spaces, parens, '@', '{', '}').
std::string hex_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

double parse_hex_double(std::string_view text, const char* what,
                        std::size_t line_no) {
  const std::string s(text);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (s.empty() || end != s.c_str() + s.size())
    throw std::invalid_argument("Trace: bad " + std::string(what) + " '" + s +
                                "' at line " + std::to_string(line_no));
  return v;
}

std::size_t parse_size(std::string_view text, const char* what,
                       std::size_t line_no) {
  const std::string s(text);
  try {
    std::size_t used = 0;
    const long v = std::stol(s, &used);
    if (used != s.size() || v < 0) throw std::invalid_argument(s);
    return static_cast<std::size_t>(v);
  } catch (const std::exception&) {
    throw std::invalid_argument("Trace: bad " + std::string(what) + " '" + s +
                                "' at line " + std::to_string(line_no));
  }
}

// --- shape grammar -----------------------------------------------------------

void format_vertex(const core::TaskSpec& spec, const core::SpecView& v,
                   std::string& out) {
  if (v.is_simple()) {
    out += hex_double(v.exec());
    out += '/';
    out += hex_double(v.pex());
    out += '@';
    out += std::to_string(v.node());
    const auto eligible = v.eligible();
    if (!eligible.empty()) {
      // Contiguous ascending ranges (the common case: "any compute node")
      // compress to {lo..hi}; anything else is written as an explicit list.
      bool contiguous = true;
      for (std::size_t i = 1; i < eligible.size(); ++i)
        if (eligible[i] != eligible[i - 1] + 1) {
          contiguous = false;
          break;
        }
      out += '{';
      if (contiguous && eligible.size() > 1) {
        out += std::to_string(eligible.front());
        out += "..";
        out += std::to_string(eligible.back());
      } else {
        for (std::size_t i = 0; i < eligible.size(); ++i) {
          if (i > 0) out += '|';
          out += std::to_string(eligible[i]);
        }
      }
      out += '}';
    }
    return;
  }
  out += v.kind() == core::SpecKind::Serial ? "S(" : "P(";
  bool first = true;
  for (const core::SpecView child : v.children()) {
    if (!first) out += ' ';
    first = false;
    format_vertex(spec, child, out);
  }
  out += ')';
}

/// Recursive-descent parser over the shape grammar. Leaves delimit on the
/// grammar's punctuation, so hexfloats (which contain letters, signs, and
/// dots) never need quoting.
class SpecParser {
 public:
  SpecParser(std::string_view text, core::TaskSpecBuilder& builder)
      : s_(text), builder_(builder) {}

  void parse() {
    skip_spaces();
    parse_node();
    skip_spaces();
    if (pos_ != s_.size()) fail("trailing characters");
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("Trace: shape parse error at offset " +
                                std::to_string(pos_) + ": " + what + " in '" +
                                std::string(s_) + "'");
  }

  void skip_spaces() {
    while (pos_ < s_.size() && s_[pos_] == ' ') ++pos_;
  }

  bool at_group() const {
    return pos_ + 1 < s_.size() && (s_[pos_] == 'S' || s_[pos_] == 'P') &&
           s_[pos_ + 1] == '(';
  }

  void parse_node() {
    if (at_group()) {
      const bool serial = s_[pos_] == 'S';
      pos_ += 2;
      if (serial) {
        builder_.begin_serial();
      } else {
        builder_.begin_parallel();
      }
      skip_spaces();
      if (pos_ < s_.size() && s_[pos_] == ')') fail("empty group");
      while (pos_ < s_.size() && s_[pos_] != ')') {
        parse_node();
        skip_spaces();
      }
      if (pos_ >= s_.size()) fail("unterminated group");
      ++pos_;  // ')'
      builder_.end();
      return;
    }
    parse_leaf();
  }

  std::string_view take_until(std::string_view delims) {
    const std::size_t begin = pos_;
    while (pos_ < s_.size() && delims.find(s_[pos_]) == std::string_view::npos)
      ++pos_;
    return s_.substr(begin, pos_ - begin);
  }

  double take_double(std::string_view delims, const char* what) {
    const std::string_view token = take_until(delims);
    const std::string t(token);
    char* end = nullptr;
    const double v = std::strtod(t.c_str(), &end);
    if (t.empty() || end != t.c_str() + t.size())
      fail(std::string("bad ") + what + " '" + t + "'");
    return v;
  }

  core::NodeId take_node(std::string_view delims) {
    const std::string t(take_until(delims));
    try {
      std::size_t used = 0;
      const long v = std::stol(t, &used);
      if (used != t.size() || v < 0) throw std::invalid_argument(t);
      return static_cast<core::NodeId>(v);
    } catch (const std::exception&) {
      fail("bad node id '" + t + "'");
    }
  }

  void parse_leaf() {
    const double exec = take_double("/", "exec");
    if (pos_ >= s_.size() || s_[pos_] != '/') fail("expected '/'");
    ++pos_;
    const double pex = take_double("@", "pex");
    if (pos_ >= s_.size() || s_[pos_] != '@') fail("expected '@'");
    ++pos_;
    const core::NodeId hint = take_node("{} )");
    if (pos_ < s_.size() && s_[pos_] == '{') {
      ++pos_;
      // {lo..hi} or {a|b|c}.
      eligible_.clear();
      for (;;) {
        const core::NodeId first = take_node(".|}");
        if (pos_ + 1 < s_.size() && s_[pos_] == '.' && s_[pos_ + 1] == '.') {
          if (!eligible_.empty()) fail("mixed eligible list and range");
          pos_ += 2;
          const core::NodeId last = take_node("}");
          if (last < first) fail("descending eligible range");
          if (pos_ >= s_.size() || s_[pos_] != '}')
            fail("unterminated eligible range");
          ++pos_;
          builder_.leaf_among(hint, first, last - first + 1, exec, pex);
          return;
        }
        eligible_.push_back(first);
        if (pos_ >= s_.size()) fail("unterminated eligible set");
        if (s_[pos_] == '}') {
          ++pos_;
          break;
        }
        if (s_[pos_] != '|') fail("expected '|' or '}'");
        ++pos_;
      }
      builder_.leaf_among(hint, eligible_, exec, pex);
      return;
    }
    builder_.leaf(hint, exec, pex);
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  core::TaskSpecBuilder& builder_;
  std::vector<core::NodeId> eligible_;
};

}  // namespace

std::string format_spec(const core::TaskSpec& spec) {
  std::string out;
  format_vertex(spec, spec.root(), out);
  return out;
}

void parse_spec_into(std::string_view text, core::TaskSpecBuilder& builder,
                     core::TaskSpec& out) {
  builder.reset(out);
  SpecParser(text, builder).parse();
  builder.finish();
}

// --- Trace::load -------------------------------------------------------------

Trace Trace::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Trace: cannot open '" + path + "'");

  Trace trace;
  core::TaskSpecBuilder builder;
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line_no == 1) {
        if (line != kHeader)
          throw std::invalid_argument(
              "Trace: '" + path + "' is not a dsrt workload trace v1 file");
        saw_header = true;
        continue;
      }
      // Metadata comments: "# key=value ...".
      for (const std::string& kv : util::split(line.substr(1), ' ')) {
        const auto eq = kv.find('=');
        if (eq == std::string::npos) continue;
        const std::string key = kv.substr(0, eq);
        if (key == "nodes")
          trace.nodes = parse_size(kv.substr(eq + 1), "nodes", line_no);
        else if (key == "link_nodes")
          trace.link_nodes =
              parse_size(kv.substr(eq + 1), "link_nodes", line_no);
      }
      continue;
    }
    if (!saw_header)
      throw std::invalid_argument(
          "Trace: '" + path + "' is not a dsrt workload trace v1 file");
    const std::vector<std::string> fields = util::split(line, ',');
    if (fields[0] == "L") {
      if (fields.size() != 6)
        throw std::invalid_argument("Trace: local record needs 6 fields at "
                                    "line " +
                                    std::to_string(line_no));
      TraceLocalRecord r;
      r.arrival = parse_hex_double(fields[1], "arrival", line_no);
      r.node = static_cast<core::NodeId>(
          parse_size(fields[2], "node", line_no));
      r.exec = parse_hex_double(fields[3], "exec", line_no);
      r.pex = parse_hex_double(fields[4], "pex", line_no);
      r.deadline = parse_hex_double(fields[5], "deadline", line_no);
      trace.locals.push_back(r);
    } else if (fields[0] == "G") {
      if (fields.size() != 4)
        throw std::invalid_argument("Trace: global record needs 4 fields at "
                                    "line " +
                                    std::to_string(line_no));
      TraceGlobalRecord r;
      r.arrival = parse_hex_double(fields[1], "arrival", line_no);
      r.deadline = parse_hex_double(fields[2], "deadline", line_no);
      parse_spec_into(fields[3], builder, r.spec);
      trace.globals.push_back(std::move(r));
    } else {
      throw std::invalid_argument("Trace: unknown record kind '" + fields[0] +
                                  "' at line " + std::to_string(line_no));
    }
  }
  if (!saw_header)
    throw std::invalid_argument("Trace: '" + path + "' is empty");
  return trace;
}

// --- TraceWriter -------------------------------------------------------------

TraceWriter::TraceWriter(const std::string& path, std::size_t nodes,
                         std::size_t link_nodes)
    : out_(path), path_(path) {
  if (!out_) throw std::runtime_error("TraceWriter: cannot open '" + path +
                                      "'");
  out_ << kHeader << '\n'
       << "# nodes=" << nodes << " link_nodes=" << link_nodes << '\n';
}

TraceWriter::~TraceWriter() {
  if (out_.is_open()) out_.close();
}

void TraceWriter::local(sim::Time arrival, core::NodeId node, double exec,
                        double pex, sim::Time deadline) {
  out_ << "L," << hex_double(arrival) << ',' << node << ','
       << hex_double(exec) << ',' << hex_double(pex) << ','
       << hex_double(deadline) << '\n';
  ++records_;
}

void TraceWriter::global(sim::Time arrival, const core::TaskSpec& spec,
                         sim::Time deadline) {
  scratch_.clear();
  format_vertex(spec, spec.root(), scratch_);
  out_ << "G," << hex_double(arrival) << ',' << hex_double(deadline) << ','
       << scratch_ << '\n';
  ++records_;
}

void TraceWriter::close() {
  if (!out_.is_open()) return;
  out_.close();
  if (out_.fail())
    throw std::runtime_error("TraceWriter: write to '" + path_ + "' failed");
}

// --- TraceSource -------------------------------------------------------------

TraceSource::TraceSource(sim::Simulator& sim, const Trace& trace,
                         sim::Time until, LocalSink local_sink,
                         GlobalSink global_sink)
    : sim_(sim),
      trace_(trace),
      until_(until),
      local_sink_(std::move(local_sink)),
      global_sink_(std::move(global_sink)) {
  if (!local_sink_ || !global_sink_)
    throw std::invalid_argument("TraceSource: null sink");
  // Group local records per node, preserving file (= capture time) order.
  // Streams sit at ascending node ids so start() pushes the first events in
  // the generated run's source order.
  core::NodeId max_node = 0;
  for (const TraceLocalRecord& r : trace_.locals)
    max_node = std::max(max_node, r.node);
  std::vector<Stream> by_node(trace_.locals.empty() ? 0 : max_node + 1);
  for (std::size_t i = 0; i < trace_.locals.size(); ++i)
    by_node[trace_.locals[i].node].records.push_back(i);
  for (Stream& stream : by_node)
    if (!stream.records.empty()) local_streams_.push_back(std::move(stream));
}

void TraceSource::start() {
  for (std::size_t s = 0; s < local_streams_.size(); ++s) schedule_local(s);
  schedule_global();
}

void TraceSource::schedule_local(std::size_t s) {
  Stream& stream = local_streams_[s];
  if (stream.cursor >= stream.records.size()) return;
  const sim::Time at = trace_.locals[stream.records[stream.cursor]].arrival;
  if (at > until_) return;
  sim_.at(at, [this, s] { fire_local(s); });
}

void TraceSource::fire_local(std::size_t s) {
  Stream& stream = local_streams_[s];
  const sim::Time t = trace_.locals[stream.records[stream.cursor]].arrival;
  std::size_t burst = 0;
  // Every consecutive record sharing this bitwise arrival stamp was
  // released by one captured arrival event; replaying them from one event
  // keeps the event count and push order identical to the captured run.
  while (stream.cursor < stream.records.size()) {
    const TraceLocalRecord& r = trace_.locals[stream.records[stream.cursor]];
    if (r.arrival != t) break;
    local_sink_(r.node, r.exec, r.pex, r.deadline);
    ++stream.cursor;
    ++burst;
    ++local_generated_;
  }
  local_counters_.events += 1;
  local_counters_.tasks += burst;
  if (burst > local_counters_.max_batch) local_counters_.max_batch = burst;
  schedule_local(s);
}

void TraceSource::schedule_global() {
  if (global_cursor_ >= trace_.globals.size()) return;
  const sim::Time at = trace_.globals[global_cursor_].arrival;
  if (at > until_) return;
  sim_.at(at, [this] { fire_global(); });
}

void TraceSource::fire_global() {
  const sim::Time t = trace_.globals[global_cursor_].arrival;
  std::size_t burst = 0;
  while (global_cursor_ < trace_.globals.size()) {
    const TraceGlobalRecord& r = trace_.globals[global_cursor_];
    if (r.arrival != t) break;
    global_sink_(r.spec, r.deadline);
    ++global_cursor_;
    ++burst;
    ++global_generated_;
  }
  global_counters_.events += 1;
  global_counters_.tasks += burst;
  if (burst > global_counters_.max_batch) global_counters_.max_batch = burst;
  schedule_global();
}

}  // namespace dsrt::workload
