#include "dsrt/workload/pex_error.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace dsrt::workload {

UniformRelativeError::UniformRelativeError(double magnitude)
    : magnitude_(magnitude) {
  if (magnitude < 0)
    throw std::invalid_argument("UniformRelativeError: negative magnitude");
}

double UniformRelativeError::predict(double exec, sim::Rng& rng) const {
  const double factor = 1.0 + rng.uniform(-magnitude_, magnitude_);
  return std::max(0.0, exec * factor);
}

ScaledPrediction::ScaledPrediction(double factor) : factor_(factor) {
  if (factor < 0)
    throw std::invalid_argument("ScaledPrediction: negative factor");
}

double ScaledPrediction::predict(double exec, sim::Rng&) const {
  return exec * factor_;
}

DistributionOnlyPrediction::DistributionOnlyPrediction(
    sim::DistributionPtr dist)
    : dist_(std::move(dist)) {
  if (!dist_)
    throw std::invalid_argument("DistributionOnlyPrediction: null dist");
}

double DistributionOnlyPrediction::predict(double, sim::Rng& rng) const {
  return std::max(0.0, dist_->sample(rng));
}

PexErrorModelPtr make_perfect_prediction() {
  return std::make_shared<PerfectPrediction>();
}
PexErrorModelPtr make_uniform_relative_error(double magnitude) {
  return std::make_shared<UniformRelativeError>(magnitude);
}
PexErrorModelPtr make_scaled_prediction(double factor) {
  return std::make_shared<ScaledPrediction>(factor);
}
PexErrorModelPtr make_distribution_only(sim::DistributionPtr dist) {
  return std::make_shared<DistributionOnlyPrediction>(std::move(dist));
}

}  // namespace dsrt::workload
