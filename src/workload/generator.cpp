#include "dsrt/workload/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace dsrt::workload {

LocalTaskSource::LocalTaskSource(sim::Simulator& sim, core::NodeId node,
                                 ArrivalProcessPtr process,
                                 sim::DistributionPtr exec,
                                 sim::DistributionPtr slack,
                                 PexErrorModelPtr pex_error, sim::Rng rng,
                                 sim::Time until, Sink sink)
    : sim_(sim),
      node_(node),
      process_(std::move(process)),
      exec_(std::move(exec)),
      slack_(std::move(slack)),
      pex_error_(std::move(pex_error)),
      rng_(rng),
      until_(until),
      sink_(std::move(sink)) {
  if (!process_ || !exec_ || !slack_ || !pex_error_ || !sink_)
    throw std::invalid_argument("LocalTaskSource: null component");
}

LocalTaskSource::LocalTaskSource(sim::Simulator& sim, core::NodeId node,
                                 double rate, sim::DistributionPtr exec,
                                 sim::DistributionPtr slack,
                                 PexErrorModelPtr pex_error, sim::Rng rng,
                                 sim::Time until, Sink sink,
                                 sim::DistributionPtr batch)
    : LocalTaskSource(sim, node,
                      std::make_unique<PoissonProcess>(rate, std::move(batch)),
                      std::move(exec), std::move(slack), std::move(pex_error),
                      rng, until, std::move(sink)) {}

void LocalTaskSource::start() {
  if (process_->rate() <= 0) return;
  schedule_next();
}

void LocalTaskSource::schedule_next() {
  const sim::Time gap = process_->next_gap(sim_.now(), rng_);
  const sim::Time at = sim_.now() + gap;
  if (at > until_) return;
  sim_.at(at, [this] { arrive(); });
}

void LocalTaskSource::arrive() {
  const std::size_t count = process_->batch_size(rng_);
  process_->note_release(count);
  for (std::size_t i = 0; i < count; ++i) {
    ++generated_;
    const double exec = exec_->sample(rng_);
    const double pex = pex_error_->predict(exec, rng_);
    const double slack = slack_->sample(rng_);
    const sim::Time deadline = sim_.now() + exec + slack;
    sink_(node_, exec, pex, deadline);
  }
  schedule_next();
}

GlobalTaskSource::GlobalTaskSource(sim::Simulator& sim,
                                   GlobalTaskParams params,
                                   ArrivalProcessPtr process, sim::Rng rng,
                                   sim::Time until, Sink sink)
    : sim_(sim),
      params_(std::move(params)),
      process_(std::move(process)),
      rng_(rng),
      until_(until),
      sink_(std::move(sink)) {
  if (!process_)
    throw std::invalid_argument("GlobalTaskSource: null arrival process");
  if (!params_.exec || !params_.slack || !params_.pex_error || !sink_)
    throw std::invalid_argument("GlobalTaskSource: null component");
  if (params_.nodes == 0)
    throw std::invalid_argument("GlobalTaskSource: no nodes");
  if (params_.link_nodes > 0) {
    if (!params_.comm_exec)
      throw std::invalid_argument("GlobalTaskSource: links need comm_exec");
    if (params_.shape == GlobalShape::Parallel)
      throw std::invalid_argument(
          "GlobalTaskSource: link nodes need serial stages (serial or "
          "serial-parallel shape)");
  }
}

namespace {

ArrivalProcessPtr legacy_global_process(double rate, bool periodic) {
  if (rate < 0) throw std::invalid_argument("GlobalTaskSource: negative rate");
  if (periodic) return std::make_unique<PeriodicProcess>(rate);
  return std::make_unique<PoissonProcess>(rate);
}

}  // namespace

GlobalTaskSource::GlobalTaskSource(sim::Simulator& sim,
                                   GlobalTaskParams params, double rate,
                                   sim::Rng rng, sim::Time until, Sink sink)
    : GlobalTaskSource(sim, params,
                       legacy_global_process(rate, params.periodic), rng,
                       until, std::move(sink)) {}

void GlobalTaskSource::start() {
  if (process_->rate() <= 0) return;
  schedule_next();
}

void GlobalTaskSource::schedule_next() {
  const sim::Time gap = process_->next_gap(sim_.now(), rng_);
  const sim::Time at = sim_.now() + gap;
  if (at > until_) return;
  sim_.at(at, [this] { arrive(); });
}

void GlobalTaskSource::arrive() {
  const std::size_t count = process_->batch_size(rng_);
  process_->note_release(count);
  for (std::size_t i = 0; i < count; ++i) {
    ++generated_;
    const core::TaskSpec& spec = next_task();
    // dl(T) = ar + ex(T) + sl(T): serial tasks use the total execution time,
    // parallel tasks the longest subtask (the paper's equation 2); a
    // serial-parallel tree generalizes both via its critical path.
    const sim::Time deadline =
        sim_.now() + spec.critical_path_exec() + draw_slack();
    sink_(spec, deadline);
  }
  schedule_next();
}

std::size_t GlobalTaskSource::draw_subtask_count() {
  if (!params_.subtask_count) return params_.subtasks;
  const double raw = params_.subtask_count->sample(rng_);
  auto m = static_cast<long long>(std::llround(raw));
  m = std::max<long long>(1, m);
  if (params_.shape == GlobalShape::Parallel)
    m = std::min<long long>(m, static_cast<long long>(params_.nodes));
  return static_cast<std::size_t>(m);
}

const core::TaskSpec& GlobalTaskSource::next_task() {
  const bool defer = params_.defer_placement;
  builder_.reset(spec_buf_);
  switch (params_.shape) {
    case GlobalShape::Serial:
      if (params_.link_nodes > 0) {
        fill_serial_task_with_comm(builder_, draw_subtask_count(),
                                   params_.nodes, params_.link_nodes,
                                   *params_.exec, *params_.comm_exec,
                                   *params_.pex_error, rng_, defer);
      } else {
        fill_serial_task(builder_, draw_subtask_count(), params_.nodes,
                         *params_.exec, *params_.pex_error, rng_, defer);
      }
      break;
    case GlobalShape::Parallel:
      fill_parallel_task(builder_, draw_subtask_count(), params_.nodes,
                         *params_.exec, *params_.pex_error, rng_, defer,
                         scratch_);
      break;
    case GlobalShape::SerialParallel:
      if (params_.link_nodes > 0) {
        fill_serial_parallel_task_with_comm(
            builder_, params_.sp_shape, params_.nodes, params_.link_nodes,
            *params_.exec, *params_.comm_exec, *params_.pex_error, rng_,
            defer, scratch_);
      } else {
        fill_serial_parallel_task(builder_, params_.sp_shape, params_.nodes,
                                  *params_.exec, *params_.pex_error, rng_,
                                  defer, scratch_);
      }
      break;
  }
  builder_.finish();
  return spec_buf_;
}

core::TaskSpec GlobalTaskSource::make_task() { return next_task(); }

}  // namespace dsrt::workload
