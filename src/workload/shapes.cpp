#include "dsrt/workload/shapes.hpp"

#include <numeric>
#include <stdexcept>
#include <utility>

namespace dsrt::workload {

void sample_distinct_nodes_into(std::size_t nodes, std::size_t count,
                                sim::Rng& rng,
                                std::vector<core::NodeId>& out) {
  if (count > nodes)
    throw std::invalid_argument(
        "sample_distinct_nodes: more subtasks than nodes");
  out.resize(nodes);
  std::iota(out.begin(), out.end(), core::NodeId{0});
  // Partial Fisher-Yates: the first `count` entries become the sample.
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(rng.below(nodes - i));
    std::swap(out[i], out[j]);
  }
  out.resize(count);
}

std::vector<core::NodeId> sample_distinct_nodes(std::size_t nodes,
                                                std::size_t count,
                                                sim::Rng& rng) {
  std::vector<core::NodeId> pool;
  sample_distinct_nodes_into(nodes, count, rng, pool);
  return pool;
}

namespace {

/// Emits one leaf with an optional deferred binding: the eligible set is
/// the contiguous id range [lo, lo + count) — the compute nodes or the
/// link nodes — appended to the spec's shared pool (no per-leaf vector).
/// The RNG consumption is identical for both arms — `node` was drawn by
/// the caller either way — so flipping `defer` never perturbs the seed
/// stream.
void emit_leaf_among(core::TaskSpecBuilder& b, core::NodeId node, bool defer,
                     std::size_t lo, std::size_t count,
                     const sim::Distribution& exec_dist,
                     const PexErrorModel& pex_error, sim::Rng& rng) {
  const double exec = exec_dist.sample(rng);
  const double pex = pex_error.predict(exec, rng);
  if (!defer) {
    b.leaf(node, exec, pex);
    return;
  }
  b.leaf_among(node, static_cast<core::NodeId>(lo),
               static_cast<std::uint32_t>(count), exec, pex);
}

/// One stage of the Section 6 shape: parallel group or single subtask.
void emit_sp_stage(core::TaskSpecBuilder& b, const SerialParallelShape& shape,
                   std::size_t nodes, const sim::Distribution& exec_dist,
                   const PexErrorModel& pex_error, sim::Rng& rng, bool defer,
                   ShapeScratch& scratch) {
  if (rng.uniform01() < shape.parallel_prob) {
    sample_distinct_nodes_into(nodes, shape.parallel_width, rng,
                               scratch.sites);
    b.begin_parallel();
    for (const auto node : scratch.sites)
      emit_leaf_among(b, node, defer, 0, nodes, exec_dist, pex_error, rng);
    b.end();
    return;
  }
  const auto node = static_cast<core::NodeId>(rng.below(nodes));
  emit_leaf_among(b, node, defer, 0, nodes, exec_dist, pex_error, rng);
}

void check_sp_shape(const SerialParallelShape& shape, std::size_t nodes) {
  if (shape.stages == 0)
    throw std::invalid_argument("make_serial_parallel_task: no stages");
  if (shape.parallel_width == 0 || shape.parallel_width > nodes)
    throw std::invalid_argument(
        "make_serial_parallel_task: bad parallel width");
}

/// Wraps a fill function into the one-shot composing API.
template <typename Fill>
core::TaskSpec make_with(Fill&& fill) {
  core::TaskSpec spec;
  core::TaskSpecBuilder b;
  b.reset(spec);
  fill(b);
  b.finish();
  return spec;
}

}  // namespace

void fill_serial_task(core::TaskSpecBuilder& b, std::size_t subtasks,
                      std::size_t nodes, const sim::Distribution& exec_dist,
                      const PexErrorModel& pex_error, sim::Rng& rng,
                      bool defer_placement) {
  if (subtasks == 0) throw std::invalid_argument("make_serial_task: m == 0");
  if (nodes == 0) throw std::invalid_argument("make_serial_task: no nodes");
  b.begin_serial();
  for (std::size_t i = 0; i < subtasks; ++i) {
    const auto node = static_cast<core::NodeId>(rng.below(nodes));
    emit_leaf_among(b, node, defer_placement, 0, nodes, exec_dist, pex_error,
                    rng);
  }
  b.end();
}

core::TaskSpec make_serial_task(std::size_t subtasks, std::size_t nodes,
                                const sim::Distribution& exec_dist,
                                const PexErrorModel& pex_error,
                                sim::Rng& rng, bool defer_placement) {
  return make_with([&](core::TaskSpecBuilder& b) {
    fill_serial_task(b, subtasks, nodes, exec_dist, pex_error, rng,
                     defer_placement);
  });
}

void fill_parallel_task(core::TaskSpecBuilder& b, std::size_t subtasks,
                        std::size_t nodes, const sim::Distribution& exec_dist,
                        const PexErrorModel& pex_error, sim::Rng& rng,
                        bool defer_placement, ShapeScratch& scratch) {
  if (subtasks == 0) throw std::invalid_argument("make_parallel_task: m == 0");
  sample_distinct_nodes_into(nodes, subtasks, rng, scratch.sites);
  b.begin_parallel();
  for (const auto node : scratch.sites)
    emit_leaf_among(b, node, defer_placement, 0, nodes, exec_dist, pex_error,
                    rng);
  b.end();
}

core::TaskSpec make_parallel_task(std::size_t subtasks, std::size_t nodes,
                                  const sim::Distribution& exec_dist,
                                  const PexErrorModel& pex_error,
                                  sim::Rng& rng, bool defer_placement) {
  ShapeScratch scratch;
  return make_with([&](core::TaskSpecBuilder& b) {
    fill_parallel_task(b, subtasks, nodes, exec_dist, pex_error, rng,
                       defer_placement, scratch);
  });
}

double SerialParallelShape::expected_leaves() const {
  return static_cast<double>(stages) *
         (parallel_prob * static_cast<double>(parallel_width) +
          (1.0 - parallel_prob));
}

double SerialParallelShape::expected_critical_path(double mean_exec) const {
  return static_cast<double>(stages) * mean_exec *
         (parallel_prob * harmonic(parallel_width) + (1.0 - parallel_prob));
}

void fill_serial_parallel_task(core::TaskSpecBuilder& b,
                               const SerialParallelShape& shape,
                               std::size_t nodes,
                               const sim::Distribution& exec_dist,
                               const PexErrorModel& pex_error, sim::Rng& rng,
                               bool defer_placement, ShapeScratch& scratch) {
  check_sp_shape(shape, nodes);
  b.begin_serial();
  for (std::size_t s = 0; s < shape.stages; ++s)
    emit_sp_stage(b, shape, nodes, exec_dist, pex_error, rng, defer_placement,
                  scratch);
  b.end();
}

core::TaskSpec make_serial_parallel_task(const SerialParallelShape& shape,
                                         std::size_t nodes,
                                         const sim::Distribution& exec_dist,
                                         const PexErrorModel& pex_error,
                                         sim::Rng& rng, bool defer_placement) {
  ShapeScratch scratch;
  return make_with([&](core::TaskSpecBuilder& b) {
    fill_serial_parallel_task(b, shape, nodes, exec_dist, pex_error, rng,
                              defer_placement, scratch);
  });
}

void fill_serial_parallel_task_with_comm(
    core::TaskSpecBuilder& b, const SerialParallelShape& shape,
    std::size_t nodes, std::size_t link_nodes,
    const sim::Distribution& exec_dist, const sim::Distribution& comm_dist,
    const PexErrorModel& pex_error, sim::Rng& rng, bool defer_placement,
    ShapeScratch& scratch) {
  check_sp_shape(shape, nodes);
  if (link_nodes == 0)
    throw std::invalid_argument(
        "make_serial_parallel_task_with_comm: no link nodes");
  b.begin_serial();
  for (std::size_t s = 0; s < shape.stages; ++s) {
    if (s > 0) {
      const auto link = static_cast<core::NodeId>(
          nodes + static_cast<std::size_t>(rng.below(link_nodes)));
      emit_leaf_among(b, link, defer_placement, nodes, link_nodes, comm_dist,
                      pex_error, rng);
    }
    emit_sp_stage(b, shape, nodes, exec_dist, pex_error, rng, defer_placement,
                  scratch);
  }
  b.end();
}

core::TaskSpec make_serial_parallel_task_with_comm(
    const SerialParallelShape& shape, std::size_t nodes,
    std::size_t link_nodes, const sim::Distribution& exec_dist,
    const sim::Distribution& comm_dist, const PexErrorModel& pex_error,
    sim::Rng& rng, bool defer_placement) {
  ShapeScratch scratch;
  return make_with([&](core::TaskSpecBuilder& b) {
    fill_serial_parallel_task_with_comm(b, shape, nodes, link_nodes,
                                        exec_dist, comm_dist, pex_error, rng,
                                        defer_placement, scratch);
  });
}

void fill_serial_task_with_comm(core::TaskSpecBuilder& b,
                                std::size_t subtasks, std::size_t nodes,
                                std::size_t link_nodes,
                                const sim::Distribution& exec_dist,
                                const sim::Distribution& comm_dist,
                                const PexErrorModel& pex_error, sim::Rng& rng,
                                bool defer_placement) {
  if (subtasks == 0)
    throw std::invalid_argument("make_serial_task_with_comm: m == 0");
  if (nodes == 0)
    throw std::invalid_argument("make_serial_task_with_comm: no nodes");
  if (link_nodes == 0)
    throw std::invalid_argument("make_serial_task_with_comm: no link nodes");
  b.begin_serial();
  for (std::size_t i = 0; i < subtasks; ++i) {
    if (i > 0) {
      const auto link = static_cast<core::NodeId>(
          nodes + static_cast<std::size_t>(rng.below(link_nodes)));
      emit_leaf_among(b, link, defer_placement, nodes, link_nodes, comm_dist,
                      pex_error, rng);
    }
    const auto node = static_cast<core::NodeId>(rng.below(nodes));
    emit_leaf_among(b, node, defer_placement, 0, nodes, exec_dist, pex_error,
                    rng);
  }
  b.end();
}

core::TaskSpec make_serial_task_with_comm(
    std::size_t subtasks, std::size_t nodes, std::size_t link_nodes,
    const sim::Distribution& exec_dist, const sim::Distribution& comm_dist,
    const PexErrorModel& pex_error, sim::Rng& rng, bool defer_placement) {
  return make_with([&](core::TaskSpecBuilder& b) {
    fill_serial_task_with_comm(b, subtasks, nodes, link_nodes, exec_dist,
                               comm_dist, pex_error, rng, defer_placement);
  });
}

double harmonic(std::size_t n) {
  double h = 0;
  for (std::size_t i = 1; i <= n; ++i) h += 1.0 / static_cast<double>(i);
  return h;
}

}  // namespace dsrt::workload
