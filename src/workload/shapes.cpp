#include "dsrt/workload/shapes.hpp"

#include <numeric>
#include <stdexcept>
#include <utility>

namespace dsrt::workload {

std::vector<core::NodeId> sample_distinct_nodes(std::size_t nodes,
                                                std::size_t count,
                                                sim::Rng& rng) {
  if (count > nodes)
    throw std::invalid_argument(
        "sample_distinct_nodes: more subtasks than nodes");
  std::vector<core::NodeId> pool(nodes);
  std::iota(pool.begin(), pool.end(), core::NodeId{0});
  // Partial Fisher-Yates: the first `count` entries become the sample.
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(rng.below(nodes - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(count);
  return pool;
}

namespace {

/// Contiguous id range a deferred leaf may be placed on: the compute nodes
/// [0, nodes) or the link nodes [nodes, nodes + link_nodes). Materialized
/// as an explicit set (one small allocation per deferred leaf, generation
/// path only — the event hot path is untouched) rather than a {first,
/// count} range so per-task locality constraints (non-contiguous eligible
/// subsets; see ROADMAP) need no TaskSpec surgery.
std::vector<core::NodeId> node_range(std::size_t lo, std::size_t count) {
  std::vector<core::NodeId> ids(count);
  std::iota(ids.begin(), ids.end(), static_cast<core::NodeId>(lo));
  return ids;
}

/// Leaf with an optional deferred binding. The RNG consumption is
/// identical for both arms — `node` was drawn by the caller either way —
/// so flipping `defer` never perturbs the seed stream.
core::TaskSpec make_leaf_among(core::NodeId node, bool defer, std::size_t lo,
                               std::size_t count,
                               const sim::Distribution& exec_dist,
                               const PexErrorModel& pex_error, sim::Rng& rng) {
  const double exec = exec_dist.sample(rng);
  const double pex = pex_error.predict(exec, rng);
  if (!defer) return core::TaskSpec::simple(node, exec, pex);
  return core::TaskSpec::simple_among(node, node_range(lo, count), exec, pex);
}

}  // namespace

core::TaskSpec make_serial_task(std::size_t subtasks, std::size_t nodes,
                                const sim::Distribution& exec_dist,
                                const PexErrorModel& pex_error,
                                sim::Rng& rng, bool defer_placement) {
  if (subtasks == 0) throw std::invalid_argument("make_serial_task: m == 0");
  if (nodes == 0) throw std::invalid_argument("make_serial_task: no nodes");
  std::vector<core::TaskSpec> children;
  children.reserve(subtasks);
  for (std::size_t i = 0; i < subtasks; ++i) {
    const auto node = static_cast<core::NodeId>(rng.below(nodes));
    children.push_back(make_leaf_among(node, defer_placement, 0, nodes,
                                       exec_dist, pex_error, rng));
  }
  return core::TaskSpec::serial(std::move(children));
}

core::TaskSpec make_parallel_task(std::size_t subtasks, std::size_t nodes,
                                  const sim::Distribution& exec_dist,
                                  const PexErrorModel& pex_error,
                                  sim::Rng& rng, bool defer_placement) {
  if (subtasks == 0) throw std::invalid_argument("make_parallel_task: m == 0");
  const auto sites = sample_distinct_nodes(nodes, subtasks, rng);
  std::vector<core::TaskSpec> children;
  children.reserve(subtasks);
  for (const auto node : sites)
    children.push_back(make_leaf_among(node, defer_placement, 0, nodes,
                                       exec_dist, pex_error, rng));
  return core::TaskSpec::parallel(std::move(children));
}

double SerialParallelShape::expected_leaves() const {
  return static_cast<double>(stages) *
         (parallel_prob * static_cast<double>(parallel_width) +
          (1.0 - parallel_prob));
}

double SerialParallelShape::expected_critical_path(double mean_exec) const {
  return static_cast<double>(stages) * mean_exec *
         (parallel_prob * harmonic(parallel_width) + (1.0 - parallel_prob));
}

namespace {

/// One stage of the Section 6 shape: parallel group or single subtask.
core::TaskSpec make_sp_stage(const SerialParallelShape& shape,
                             std::size_t nodes,
                             const sim::Distribution& exec_dist,
                             const PexErrorModel& pex_error, sim::Rng& rng,
                             bool defer) {
  if (rng.uniform01() < shape.parallel_prob) {
    const auto sites = sample_distinct_nodes(nodes, shape.parallel_width, rng);
    std::vector<core::TaskSpec> group;
    group.reserve(sites.size());
    for (const auto node : sites)
      group.push_back(
          make_leaf_among(node, defer, 0, nodes, exec_dist, pex_error, rng));
    return core::TaskSpec::parallel(std::move(group));
  }
  const auto node = static_cast<core::NodeId>(rng.below(nodes));
  return make_leaf_among(node, defer, 0, nodes, exec_dist, pex_error, rng);
}

void check_sp_shape(const SerialParallelShape& shape, std::size_t nodes) {
  if (shape.stages == 0)
    throw std::invalid_argument("make_serial_parallel_task: no stages");
  if (shape.parallel_width == 0 || shape.parallel_width > nodes)
    throw std::invalid_argument(
        "make_serial_parallel_task: bad parallel width");
}

}  // namespace

core::TaskSpec make_serial_parallel_task(const SerialParallelShape& shape,
                                         std::size_t nodes,
                                         const sim::Distribution& exec_dist,
                                         const PexErrorModel& pex_error,
                                         sim::Rng& rng, bool defer_placement) {
  check_sp_shape(shape, nodes);
  std::vector<core::TaskSpec> stages;
  stages.reserve(shape.stages);
  for (std::size_t s = 0; s < shape.stages; ++s)
    stages.push_back(make_sp_stage(shape, nodes, exec_dist, pex_error, rng,
                                   defer_placement));
  return core::TaskSpec::serial(std::move(stages));
}

core::TaskSpec make_serial_parallel_task_with_comm(
    const SerialParallelShape& shape, std::size_t nodes,
    std::size_t link_nodes, const sim::Distribution& exec_dist,
    const sim::Distribution& comm_dist, const PexErrorModel& pex_error,
    sim::Rng& rng, bool defer_placement) {
  check_sp_shape(shape, nodes);
  if (link_nodes == 0)
    throw std::invalid_argument(
        "make_serial_parallel_task_with_comm: no link nodes");
  std::vector<core::TaskSpec> stages;
  stages.reserve(2 * shape.stages - 1);
  for (std::size_t s = 0; s < shape.stages; ++s) {
    if (s > 0) {
      const auto link = static_cast<core::NodeId>(
          nodes + static_cast<std::size_t>(rng.below(link_nodes)));
      stages.push_back(make_leaf_among(link, defer_placement, nodes,
                                       link_nodes, comm_dist, pex_error,
                                       rng));
    }
    stages.push_back(make_sp_stage(shape, nodes, exec_dist, pex_error, rng,
                                   defer_placement));
  }
  return core::TaskSpec::serial(std::move(stages));
}

core::TaskSpec make_serial_task_with_comm(
    std::size_t subtasks, std::size_t nodes, std::size_t link_nodes,
    const sim::Distribution& exec_dist, const sim::Distribution& comm_dist,
    const PexErrorModel& pex_error, sim::Rng& rng, bool defer_placement) {
  if (subtasks == 0)
    throw std::invalid_argument("make_serial_task_with_comm: m == 0");
  if (nodes == 0)
    throw std::invalid_argument("make_serial_task_with_comm: no nodes");
  if (link_nodes == 0)
    throw std::invalid_argument("make_serial_task_with_comm: no link nodes");
  std::vector<core::TaskSpec> children;
  children.reserve(2 * subtasks - 1);
  for (std::size_t i = 0; i < subtasks; ++i) {
    if (i > 0) {
      const auto link = static_cast<core::NodeId>(
          nodes + static_cast<std::size_t>(rng.below(link_nodes)));
      children.push_back(make_leaf_among(link, defer_placement, nodes,
                                         link_nodes, comm_dist, pex_error,
                                         rng));
    }
    const auto node = static_cast<core::NodeId>(rng.below(nodes));
    children.push_back(make_leaf_among(node, defer_placement, 0, nodes,
                                       exec_dist, pex_error, rng));
  }
  return core::TaskSpec::serial(std::move(children));
}

double harmonic(std::size_t n) {
  double h = 0;
  for (std::size_t i = 1; i <= n; ++i) h += 1.0 / static_cast<double>(i);
  return h;
}

}  // namespace dsrt::workload
