#include "dsrt/workload/arrival.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "dsrt/util/flags.hpp"

namespace dsrt::workload {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

std::string format_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

[[noreturn]] void throw_unknown_kind(std::string_view text) {
  std::string msg = "ArrivalSpec: unknown arrival process '";
  msg += text;
  msg += "' (expected one of: ";
  bool first = true;
  for (std::string_view name : arrival_kind_names()) {
    if (!first) msg += ", ";
    first = false;
    msg += name;
  }
  msg += ")";
  throw std::invalid_argument(msg);
}

double parse_num(std::string_view what, const std::string& text) {
  const auto v = util::parse_double(text);
  if (!v)
    throw std::invalid_argument("ArrivalSpec: bad " + std::string(what) +
                                " '" + text + "'");
  return *v;
}

}  // namespace

std::size_t ArrivalProcess::batch_size(sim::Rng&) { return 1; }

// --- Poisson -----------------------------------------------------------------

PoissonProcess::PoissonProcess(double rate, sim::DistributionPtr batch)
    : ArrivalProcess(rate), batch_(std::move(batch)) {
  if (rate < 0) throw std::invalid_argument("PoissonProcess: negative rate");
}

sim::Time PoissonProcess::next_gap(sim::Time, sim::Rng& rng) {
  return rng.exponential(1.0 / rate_);
}

std::size_t PoissonProcess::batch_size(sim::Rng& rng) {
  if (!batch_) return 1;
  // Legacy compound-Poisson rounding: llround, clamped to >= 1.
  const auto raw = std::llround(batch_->sample(rng));
  return raw < 1 ? 1 : static_cast<std::size_t>(raw);
}

// --- Periodic ----------------------------------------------------------------

PeriodicProcess::PeriodicProcess(double rate) : ArrivalProcess(rate) {
  if (rate < 0) throw std::invalid_argument("PeriodicProcess: negative rate");
}

sim::Time PeriodicProcess::next_gap(sim::Time, sim::Rng&) {
  return 1.0 / rate_;
}

// --- MMPP / on-off -----------------------------------------------------------

MmppProcess::MmppProcess(double rate, std::string_view name,
                         double multipliers[2], double sojourns[2])
    : ArrivalProcess(rate), name_(name) {
  if (rate < 0) throw std::invalid_argument("MmppProcess: negative rate");
  if (multipliers[0] < 0 || multipliers[1] < 0)
    throw std::invalid_argument("MmppProcess: negative rate multiplier");
  if (multipliers[0] + multipliers[1] <= 0)
    throw std::invalid_argument("MmppProcess: both states silent");
  if (sojourns[0] <= 0 || sojourns[1] <= 0)
    throw std::invalid_argument("MmppProcess: non-positive sojourn");
  sojourn_[0] = sojourns[0];
  sojourn_[1] = sojourns[1];
  // Normalize so the time-weighted average event rate equals `rate`:
  // stationary weight of state i is sojourn_i / (s0 + s1).
  const double weighted = (sojourns[0] * multipliers[0] +
                           sojourns[1] * multipliers[1]) /
                          (sojourns[0] + sojourns[1]);
  lambda_[0] = rate * multipliers[0] / weighted;
  lambda_[1] = rate * multipliers[1] / weighted;
}

sim::Time MmppProcess::next_gap(sim::Time now, sim::Rng& rng) {
  if (!started_) {
    started_ = true;
    phase_end_ = now + rng.exponential(sojourn_[phase_]);
  }
  sim::Time t = now;
  for (;;) {
    // In state i arrivals are Poisson(lambda_i); by memorylessness the time
    // to the next arrival measured from any instant inside the sojourn is
    // Exp(1/lambda_i), and redrawing after a phase switch is exact.
    if (lambda_[phase_] > 0) {
      const sim::Time candidate = t + rng.exponential(1.0 / lambda_[phase_]);
      if (candidate <= phase_end_) return candidate - now;
    }
    t = phase_end_;
    phase_ ^= 1;
    ++counters_.phase_changes;
    phase_end_ = t + rng.exponential(sojourn_[phase_]);
  }
}

// --- Diurnal -----------------------------------------------------------------

DiurnalProcess::DiurnalProcess(double rate, double period, double amplitude)
    : ArrivalProcess(rate), period_(period), amplitude_(amplitude) {
  if (rate < 0) throw std::invalid_argument("DiurnalProcess: negative rate");
  if (period <= 0)
    throw std::invalid_argument("DiurnalProcess: non-positive period");
  if (amplitude < 0 || amplitude > 1)
    throw std::invalid_argument("DiurnalProcess: amplitude outside [0,1]");
}

sim::Time DiurnalProcess::next_gap(sim::Time now, sim::Rng& rng) {
  // Lewis-Shedler thinning against the envelope lambda_max = rate (1 + a).
  const double lambda_max = rate_ * (1.0 + amplitude_);
  sim::Time t = now;
  for (;;) {
    t += rng.exponential(1.0 / lambda_max);
    const double lambda_t =
        rate_ * (1.0 + amplitude_ * std::sin(kTwoPi * t / period_));
    if (rng.uniform01() * lambda_max < lambda_t) return t - now;
    ++counters_.thinning_rejects;
  }
}

// --- Spec --------------------------------------------------------------------

ArrivalSpec ArrivalSpec::parse(std::string_view text) {
  const std::string s(text);
  const auto colon = s.find(':');
  const std::string kind = s.substr(0, colon);
  std::vector<std::string> args;
  if (colon != std::string::npos)
    args = util::split(s.substr(colon + 1), ',');

  ArrivalSpec spec;
  if (kind == "poisson") {
    if (!args.empty())
      throw std::invalid_argument("ArrivalSpec: poisson takes no parameters");
  } else if (kind == "batch") {
    spec.kind = ArrivalKind::Batch;
    if (args.size() == 1) {
      spec.a = spec.b = parse_num("batch size", args[0]);
    } else if (args.size() == 2) {
      spec.a = parse_num("batch lo", args[0]);
      spec.b = parse_num("batch hi", args[1]);
    } else {
      throw std::invalid_argument(
          "ArrivalSpec: batch takes <n> or <lo>,<hi>");
    }
  } else if (kind == "mmpp") {
    spec.kind = ArrivalKind::Mmpp;
    if (args.size() < 2 || args.size() > 4)
      throw std::invalid_argument(
          "ArrivalSpec: mmpp takes <m1>,<m2>[,<s1>[,<s2>]]");
    spec.a = parse_num("mmpp multiplier", args[0]);
    spec.b = parse_num("mmpp multiplier", args[1]);
    spec.c = args.size() > 2 ? parse_num("mmpp sojourn", args[2]) : 100.0;
    spec.d = args.size() > 3 ? parse_num("mmpp sojourn", args[3]) : spec.c;
  } else if (kind == "onoff") {
    spec.kind = ArrivalKind::OnOff;
    if (args.size() != 2)
      throw std::invalid_argument("ArrivalSpec: onoff takes <on>,<off>");
    spec.a = parse_num("onoff on-period", args[0]);
    spec.b = parse_num("onoff off-period", args[1]);
  } else if (kind == "diurnal") {
    spec.kind = ArrivalKind::Diurnal;
    if (args.size() != 2)
      throw std::invalid_argument(
          "ArrivalSpec: diurnal takes <period>,<amplitude>");
    spec.a = parse_num("diurnal period", args[0]);
    spec.b = parse_num("diurnal amplitude", args[1]);
  } else {
    throw_unknown_kind(kind);
  }
  spec.validate();
  return spec;
}

std::string ArrivalSpec::describe() const {
  switch (kind) {
    case ArrivalKind::Poisson:
      return "poisson";
    case ArrivalKind::Batch:
      if (a == b) return "batch:" + format_double(a);
      return "batch:" + format_double(a) + "," + format_double(b);
    case ArrivalKind::Mmpp:
      return "mmpp:" + format_double(a) + "," + format_double(b) + "," +
             format_double(c) + "," + format_double(d);
    case ArrivalKind::OnOff:
      return "onoff:" + format_double(a) + "," + format_double(b);
    case ArrivalKind::Diurnal:
      return "diurnal:" + format_double(a) + "," + format_double(b);
  }
  return "poisson";  // unreachable
}

void ArrivalSpec::validate() const {
  switch (kind) {
    case ArrivalKind::Poisson:
      break;
    case ArrivalKind::Batch:
      if (a < 1 || b < a)
        throw std::invalid_argument(
            "ArrivalSpec: batch needs 1 <= lo <= hi");
      break;
    case ArrivalKind::Mmpp:
      if (a < 0 || b < 0 || a + b <= 0)
        throw std::invalid_argument(
            "ArrivalSpec: mmpp multipliers must be >= 0, not both zero");
      if (c <= 0 || d <= 0)
        throw std::invalid_argument(
            "ArrivalSpec: mmpp sojourns must be positive");
      break;
    case ArrivalKind::OnOff:
      if (a <= 0 || b <= 0)
        throw std::invalid_argument(
            "ArrivalSpec: onoff periods must be positive");
      break;
    case ArrivalKind::Diurnal:
      if (a <= 0)
        throw std::invalid_argument(
            "ArrivalSpec: diurnal period must be positive");
      if (b < 0 || b > 1)
        throw std::invalid_argument(
            "ArrivalSpec: diurnal amplitude outside [0,1]");
      break;
  }
}

double ArrivalSpec::batch_mean() const {
  if (kind != ArrivalKind::Batch) return 1.0;
  // Legacy load-preservation rule: max(1, E[batch]).
  const double mean = 0.5 * (a + b);
  return mean < 1.0 ? 1.0 : mean;
}

ArrivalSpec ArrivalSpec::for_globals() const {
  if (kind == ArrivalKind::Batch) return ArrivalSpec{};
  return *this;
}

std::vector<std::string_view> arrival_kind_names() {
  return {"poisson", "batch", "mmpp", "onoff", "diurnal"};
}

ArrivalProcessPtr make_arrival_process(const ArrivalSpec& spec, double rate,
                                       bool periodic) {
  spec.validate();
  if (periodic) {
    if (!spec.is_default())
      throw std::invalid_argument(
          "make_arrival_process: periodic gaps compose only with the "
          "poisson spec");
    return std::make_unique<PeriodicProcess>(rate);
  }
  switch (spec.kind) {
    case ArrivalKind::Poisson:
      return std::make_unique<PoissonProcess>(rate);
    case ArrivalKind::Batch:
      return std::make_unique<PoissonProcess>(
          rate, spec.a == spec.b ? sim::constant(spec.a)
                                 : sim::uniform(spec.a, spec.b));
    case ArrivalKind::Mmpp: {
      double multipliers[2] = {spec.a, spec.b};
      double sojourns[2] = {spec.c, spec.d};
      return std::make_unique<MmppProcess>(rate, "mmpp", multipliers,
                                           sojourns);
    }
    case ArrivalKind::OnOff: {
      // On-off = interrupted Poisson: bursts at (on+off)/on times the base
      // rate during Exp(on) on-periods, silence during Exp(off); the MMPP
      // normalization lands the long-run rate exactly on `rate`.
      double multipliers[2] = {(spec.a + spec.b) / spec.a, 0.0};
      double sojourns[2] = {spec.a, spec.b};
      return std::make_unique<MmppProcess>(rate, "onoff", multipliers,
                                           sojourns);
    }
    case ArrivalKind::Diurnal:
      return std::make_unique<DiurnalProcess>(rate, spec.a, spec.b);
  }
  throw std::invalid_argument("make_arrival_process: unknown kind");
}

}  // namespace dsrt::workload
