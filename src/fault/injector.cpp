#include "dsrt/fault/injector.hpp"

#include <stdexcept>

namespace dsrt::fault {

FaultInjector::FaultInjector(sim::Simulator& sim, const FaultSpec& spec,
                             std::vector<std::unique_ptr<sched::Node>>& nodes,
                             std::size_t compute_nodes, std::uint64_t seed,
                             sim::Time horizon)
    : sim_(sim),
      spec_(spec),
      nodes_(nodes),
      compute_nodes_(compute_nodes),
      horizon_(horizon),
      rng_(seed, kFaultRngStream),
      down_since_(nodes.size(), 0) {
  spec_.validate();
  if (compute_nodes_ > nodes_.size())
    throw std::invalid_argument("FaultInjector: compute_nodes > nodes");
}

void FaultInjector::start() {
  if (!spec_.outages()) return;
  // First failures in node-id order: the draw sequence depends only on the
  // spec and the topology, never on scheduling history.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (is_link(i) ? spec_.link_enabled() : spec_.crash_enabled())
      schedule_failure(i);
  }
}

void FaultInjector::schedule_failure(std::size_t node) {
  const sim::Time at = sim_.now() + rng_.exponential(mttf_of(node));
  if (at > horizon_) return;  // the chain ends past the measured window
  sim_.at(at, [this, node] {
    if (is_link(node)) {
      ++link_outages_;
    } else {
      ++crashes_;
    }
    down_since_[node] = sim_.now();
    nodes_[node]->fail(sim_.now());
    schedule_recovery(node);
  });
}

void FaultInjector::schedule_recovery(std::size_t node) {
  const sim::Time at = sim_.now() + rng_.exponential(mttr_of(node));
  if (at > horizon_) return;  // stays down: the open outage is not counted
  sim_.at(at, [this, node] {
    ++recoveries_;
    downtime_ += sim_.now() - down_since_[node];
    nodes_[node]->recover(sim_.now());
    schedule_failure(node);
  });
}

double FaultInjector::straggle_factor() {
  if (!spec_.straggle_enabled()) return 1.0;
  if (rng_.uniform01() >= spec_.straggle_p) return 1.0;
  ++straggled_;
  return spec_.straggle_mult;
}

}  // namespace dsrt::fault
