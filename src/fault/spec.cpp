#include "dsrt/fault/spec.hpp"

#include <sstream>
#include <stdexcept>
#include <vector>

#include "dsrt/util/flags.hpp"

namespace dsrt::fault {

namespace {

constexpr const char* kVocabulary =
    "(want crash:<mttf>,<mttr> | link:<mttf>,<mttr> | "
    "exec_straggle:<p>,<mult> | retry:<budget> | shed[:<margin>] | none, "
    "';'-joined)";

/// Splits "a,b" into exactly `want` positive doubles; rejects everything
/// else with the component name in the message.
std::vector<double> params_of(const std::string& component,
                              std::string_view text, std::size_t want) {
  std::vector<double> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string_view piece =
        text.substr(start, comma == std::string_view::npos ? std::string_view::npos
                                                           : comma - start);
    const auto v = util::parse_double(piece);
    if (!v)
      throw std::invalid_argument("FaultSpec: bad number '" +
                                  std::string(piece) + "' in '" + component +
                                  "'");
    out.push_back(*v);
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  if (out.size() != want)
    throw std::invalid_argument("FaultSpec: '" + component + "' takes " +
                                std::to_string(want) + " parameter(s)");
  return out;
}

}  // namespace

FaultSpec FaultSpec::parse(std::string_view text) {
  FaultSpec spec;
  if (text.empty() || text == "none") return spec;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t semi = text.find(';', start);
    const std::string_view piece =
        text.substr(start, semi == std::string_view::npos
                               ? std::string_view::npos
                               : semi - start);
    std::string_view key = piece;
    std::string_view param;
    bool has_param = false;
    if (const auto colon = piece.find(':'); colon != std::string_view::npos) {
      key = piece.substr(0, colon);
      param = piece.substr(colon + 1);
      has_param = true;
      // A trailing colon ("crash:") is a malformed spec, not a request for
      // defaults — same strictness as the load-model/placement grammars.
      if (param.empty())
        throw std::invalid_argument("FaultSpec: empty parameter in '" +
                                    std::string(piece) + "'");
    }
    const std::string component(key);
    if (key == "crash") {
      const auto p = params_of(component, param, 2);
      spec.crash_mttf = p[0];
      spec.crash_mttr = p[1];
    } else if (key == "link") {
      const auto p = params_of(component, param, 2);
      spec.link_mttf = p[0];
      spec.link_mttr = p[1];
    } else if (key == "exec_straggle") {
      const auto p = params_of(component, param, 2);
      spec.straggle_p = p[0];
      spec.straggle_mult = p[1];
    } else if (key == "retry") {
      const auto p = params_of(component, param, 1);
      if (p[0] < 0 || p[0] != static_cast<double>(
                                  static_cast<std::uint32_t>(p[0])))
        throw std::invalid_argument("FaultSpec: retry budget '" +
                                    std::string(param) +
                                    "' is not a non-negative integer");
      spec.retry_budget = static_cast<std::uint32_t>(p[0]);
    } else if (key == "shed") {
      spec.shed = true;
      if (has_param) spec.shed_margin = params_of(component, param, 1)[0];
    } else if (key == "none") {
      throw std::invalid_argument(
          "FaultSpec: 'none' cannot be combined with other components");
    } else {
      throw std::invalid_argument("FaultSpec: unknown component '" +
                                  std::string(piece) + "' " + kVocabulary);
    }
    if (semi == std::string_view::npos) break;
    start = semi + 1;
  }
  spec.validate();
  return spec;
}

std::string FaultSpec::describe() const {
  if (!any()) return "none";
  std::ostringstream os;
  const char* sep = "";
  if (crash_enabled()) {
    os << "crash:" << crash_mttf << ',' << crash_mttr;
    sep = ";";
  }
  if (link_enabled()) {
    os << sep << "link:" << link_mttf << ',' << link_mttr;
    sep = ";";
  }
  if (straggle_enabled()) {
    os << sep << "exec_straggle:" << straggle_p << ',' << straggle_mult;
    sep = ";";
  }
  if (retry_budget > 0) {
    os << sep << "retry:" << retry_budget;
    sep = ";";
  }
  if (shed) {
    os << sep << "shed";
    if (shed_margin != 1.0) os << ':' << shed_margin;
  }
  return os.str();
}

void FaultSpec::validate() const {
  if (crash_mttf < 0 || (crash_enabled() && crash_mttr <= 0))
    throw std::invalid_argument(
        "FaultSpec: crash needs mttf > 0 and mttr > 0");
  if (link_mttf < 0 || (link_enabled() && link_mttr <= 0))
    throw std::invalid_argument("FaultSpec: link needs mttf > 0 and mttr > 0");
  if (straggle_p < 0 || straggle_p > 1)
    throw std::invalid_argument(
        "FaultSpec: exec_straggle probability outside [0,1]");
  if (straggle_enabled() && straggle_mult <= 1)
    throw std::invalid_argument(
        "FaultSpec: exec_straggle multiplier must be > 1");
  if (retry_budget > kMaxRetryBudget)
    throw std::invalid_argument("FaultSpec: retry budget > " +
                                std::to_string(kMaxRetryBudget));
  if (!(shed_margin > 0))
    throw std::invalid_argument("FaultSpec: shed margin <= 0");
}

}  // namespace dsrt::fault
