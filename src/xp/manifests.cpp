// Built-in sweep manifests: the experiment grids the figure/ablation
// benches render, declared once as named, checkable definitions. The
// benches pull their grid + base from here (thin wrappers), and
// `sweep_cli run/check/reproduce` and the committed expectation files key
// on the same definitions — so the validated result database and the
// printed tables cannot drift apart.
//
// Canonical manifest horizons are deliberately CI-sized (the committed
// expectations are re-checked on every push): fig grids run at 5e4 time
// units, the scale grid at a constant-event-budget 2e4. A bench still
// reproduces the paper figures at the paper's 1e6 horizon — bench run
// control overrides the manifest base — but the *checked* surface is the
// quick grid. Changing any definition here changes the config hashes, so
// stale artifacts and expectations are rejected instead of silently
// mis-compared (re-run `sweep_cli bless` after an intentional change).
#include "dsrt/xp/manifest.hpp"

#include "dsrt/system/baseline.hpp"

namespace dsrt::xp {

namespace {

using engine::SweepAxis;
using engine::SweepGrid;
using system::Config;

Manifest fig2_manifest() {
  Manifest m;
  m.name = "fig2_ssp";
  m.description =
      "Fig. 2 grid: MD_local/MD_global vs load for SSP strategies "
      "UD, ED, EQS, EQF (Table-1 baseline)";
  m.base = [] {
    Config cfg = system::baseline_ssp();
    cfg.horizon = 5e4;
    return cfg;
  };
  m.grid = [] {
    SweepGrid grid;
    grid.axis(SweepAxis::by_field("load", {"0.1", "0.2", "0.3", "0.4", "0.5"}))
        .axis(SweepAxis::by_field("ssp", {"UD", "ED", "EQS", "EQF"}));
    return grid;
  };
  m.metrics = default_metrics();
  return m;
}

Manifest fig3_manifest() {
  Manifest m;
  m.name = "fig3_frac_local";
  m.description =
      "Fig. 3 grid: miss ratios vs frac_local for UD and EQF at load 0.5";
  m.base = [] {
    Config cfg = system::baseline_ssp();
    cfg.horizon = 5e4;
    return cfg;
  };
  m.grid = [] {
    SweepGrid grid;
    grid.axis(SweepAxis::by_field("frac_local",
                                  {"0.1", "0.25", "0.5", "0.75", "0.9",
                                   "0.95"}))
        .axis(SweepAxis::by_field("ssp", {"UD", "EQF"}));
    return grid;
  };
  m.metrics = default_metrics();
  return m;
}

Manifest fig4_manifest() {
  Manifest m;
  m.name = "fig4_psp";
  m.description =
      "Fig. 4 grid: MD_local/MD_global vs load for PSP strategies "
      "UD, DIV-1, DIV-2, GF (parallel baseline)";
  m.base = [] {
    Config cfg = system::baseline_psp();
    cfg.horizon = 5e4;
    return cfg;
  };
  m.grid = [] {
    SweepGrid grid;
    grid.axis(SweepAxis::by_field("load",
                                  {"0.1", "0.2", "0.3", "0.4", "0.5", "0.6"}))
        .axis(SweepAxis::by_field("psp", {"UD", "DIV1", "DIV2", "GF"}));
    return grid;
  };
  m.metrics = default_metrics();
  return m;
}

Manifest abl_rel_flex_manifest() {
  Manifest m;
  m.name = "abl_rel_flex";
  m.description =
      "Section 4.3 ablation grid: rel_flex x load x {UD, EQF} "
      "(EQF wins in the moderate slack/load band)";
  m.base = [] {
    Config cfg = system::baseline_ssp();
    cfg.horizon = 5e4;
    return cfg;
  };
  m.grid = [] {
    SweepGrid grid;
    grid.axis(SweepAxis::by_field(
            "rel_flex", {"0.1", "0.25", "0.5", "1.0", "2.0", "4.0", "8.0"}))
        .axis(SweepAxis::by_field("load", {"0.3", "0.5", "0.7"}))
        .axis(SweepAxis::by_field("ssp", {"UD", "EQF"}));
    return grid;
  };
  m.metrics = default_metrics();
  return m;
}

Manifest abl_scale_quick_manifest() {
  Manifest m;
  m.name = "abl_scale_quick";
  m.description =
      "Scale ablation (quick grid): k x placement at constant per-node "
      "load; horizon shrinks 24/k past k=24 so the event budget per point "
      "stays flat (mirrors bench_abl_scale --quick)";
  m.base = [] {
    Config cfg = system::baseline_ssp();
    cfg.horizon = 2e4;
    return cfg;
  };
  m.grid = [] {
    SweepGrid grid;
    std::vector<std::pair<std::string, std::function<void(Config&)>>> ks;
    for (std::size_t k : {std::size_t{64}, std::size_t{256}}) {
      ks.emplace_back(std::to_string(k), [k](Config& cfg) {
        cfg.nodes = k;
        // Relative to the base horizon, so bench run control composes.
        if (k > 24) cfg.horizon *= 24.0 / static_cast<double>(k);
      });
    }
    std::vector<std::pair<std::string, std::function<void(Config&)>>>
        placements;
    for (const auto& [placement, load_model] :
         {std::pair<const char*, const char*>{"static", "none"},
          {"jsq-pex", "exact"},
          {"pod:2", "exact"}}) {
      placements.emplace_back(
          placement, [placement = std::string(placement),
                      load_model = std::string(load_model)](Config& cfg) {
            cfg.placement = core::PlacementSpec::parse(placement);
            cfg.load_model = core::LoadModelSpec::parse(load_model);
          });
    }
    grid.axis(SweepAxis::choices("k", std::move(ks)))
        .axis(SweepAxis::choices("placement", std::move(placements)));
    return grid;
  };
  m.metrics = default_metrics();
  return m;
}

Manifest wl_mix_manifest() {
  Manifest m;
  m.name = "wl_mix";
  m.description =
      "Workload-mix grid: arrival process x service law at the serial "
      "baseline (all points matched-mean/rate-normalized, so the offered "
      "load is constant and only burstiness/variability moves)";
  m.base = [] {
    Config cfg = system::baseline_ssp();
    cfg.horizon = 5e4;
    return cfg;
  };
  m.grid = [] {
    SweepGrid grid;
    grid.axis(SweepAxis::by_field("arrivals",
                                  {"poisson", "batch:1,8", "mmpp:4,0.25",
                                   "onoff:20,80", "diurnal:1000,0.8"}))
        .axis(SweepAxis::by_field("service",
                                  {"exp", "pareto:2.5", "lognormal:1"}));
    return grid;
  };
  m.metrics = default_metrics();
  return m;
}

Manifest abl_stale_decay_manifest() {
  Manifest m;
  m.name = "abl_stale_decay";
  m.description =
      "Staleness-decay grid: load-model freshness x placement for the "
      "load-aware serial strategy at load 0.85 (how fast the EQS-L / "
      "jsq advantage decays as the state view ages)";
  m.base = [] {
    Config cfg = system::baseline_ssp();
    cfg.horizon = 5e4;
    cfg.load = 0.85;
    cfg.ssp = core::serial_strategy_by_name("EQS-L");
    return cfg;
  };
  m.grid = [] {
    SweepGrid grid;
    grid.axis(SweepAxis::by_field(
            "load_model", {"exact", "sampled:5", "stale:5", "stale:20"}))
        .axis(SweepAxis::by_field("placement", {"static", "jsq-pex"}));
    return grid;
  };
  m.metrics = default_metrics();
  return m;
}

Manifest abl_faults_manifest() {
  Manifest m;
  m.name = "abl_faults";
  m.description =
      "Fault-tolerance grid: fault intensity x placement for the serial "
      "EQF strategy at load 0.5 (crash/recovery renewal faults from RNG "
      "stream 3; MD must degrade smoothly as intensity rises, with jsq "
      "routing around marked-down nodes — past ~0.7 load the backlog "
      "relief from crashed queues masks the trend)";
  m.base = [] {
    Config cfg = system::baseline_ssp();
    cfg.horizon = 5e4;
    cfg.load = 0.5;
    cfg.ssp = core::serial_strategy_by_name("EQF");
    return cfg;
  };
  m.grid = [] {
    SweepGrid grid;
    grid.axis(SweepAxis::by_field("faults",
                                  {"none", "crash:500,25;retry:2",
                                   "crash:150,25;retry:2;shed:1.5"}));
    std::vector<std::pair<std::string, std::function<void(Config&)>>>
        placements;
    for (const auto& [placement, load_model] :
         {std::pair<const char*, const char*>{"static", "none"},
          {"jsq-pex", "exact"}}) {
      placements.emplace_back(
          placement, [placement = std::string(placement),
                      load_model = std::string(load_model)](Config& cfg) {
            cfg.placement = core::PlacementSpec::parse(placement);
            cfg.load_model = core::LoadModelSpec::parse(load_model);
          });
    }
    grid.axis(SweepAxis::choices("placement", std::move(placements)));
    return grid;
  };
  m.metrics = default_metrics();
  return m;
}

}  // namespace

Registry& builtin_registry() {
  static Registry registry = [] {
    Registry r;
    r.add(fig2_manifest());
    r.add(fig3_manifest());
    r.add(fig4_manifest());
    r.add(abl_rel_flex_manifest());
    r.add(abl_scale_quick_manifest());
    r.add(wl_mix_manifest());
    r.add(abl_stale_decay_manifest());
    r.add(abl_faults_manifest());
    return r;
  }();
  return registry;
}

}  // namespace dsrt::xp
