#include "dsrt/xp/manifest.hpp"

#include <stdexcept>

namespace dsrt::xp {

std::vector<MetricSpec> default_metrics(double ev_per_sec_rel_tol) {
  std::vector<MetricSpec> metrics;
  metrics.push_back({"md_local", MetricSpec::Kind::Exact, 0, 0,
                     [](const PointRun& p) { return p.result.md_local.mean; }});
  metrics.push_back(
      {"md_global", MetricSpec::Kind::Exact, 0, 0,
       [](const PointRun& p) { return p.result.md_global.mean; }});
  metrics.push_back(
      {"md_overall", MetricSpec::Kind::Exact, 0, 0,
       [](const PointRun& p) { return p.result.md_overall.mean; }});
  metrics.push_back({"finished_local", MetricSpec::Kind::Exact, 0, 0,
                     [](const PointRun& p) {
                       double finished = 0;
                       for (const auto& run : p.result.runs)
                         finished +=
                             static_cast<double>(run.local.missed.trials());
                       return finished;
                     }});
  metrics.push_back({"finished_global", MetricSpec::Kind::Exact, 0, 0,
                     [](const PointRun& p) {
                       double finished = 0;
                       for (const auto& run : p.result.runs)
                         finished +=
                             static_cast<double>(run.global.missed.trials());
                       return finished;
                     }});
  metrics.push_back({"events", MetricSpec::Kind::Exact, 0, 0,
                     [](const PointRun& p) {
                       double events = 0;
                       for (const auto& run : p.result.runs)
                         events += static_cast<double>(run.events);
                       return events;
                     }});
  metrics.push_back({"events_per_sec", MetricSpec::Kind::Relative,
                     ev_per_sec_rel_tol, 0, [](const PointRun& p) {
                       double events = 0;
                       for (const auto& run : p.result.runs)
                         events += static_cast<double>(run.events);
                       return p.wall_seconds > 0 ? events / p.wall_seconds
                                                 : 0.0;
                     }});
  return metrics;
}

std::vector<engine::SweepPoint> Manifest::expand() const {
  std::vector<engine::SweepPoint> points = grid().expand(base());
  for (const engine::SweepPoint& point : points) point.config.validate();
  return points;
}

std::size_t Manifest::points() const { return grid().points(); }

const MetricSpec* Manifest::metric(std::string_view metric_name) const {
  for (const MetricSpec& m : metrics)
    if (m.name == metric_name) return &m;
  return nullptr;
}

void Registry::add(Manifest manifest) {
  if (manifest.name.empty())
    throw std::invalid_argument("Registry::add: empty manifest name");
  if (find(manifest.name))
    throw std::invalid_argument("Registry::add: duplicate manifest '" +
                                manifest.name + "'");
  if (!manifest.base || !manifest.grid)
    throw std::invalid_argument("Registry::add: manifest '" + manifest.name +
                                "' needs base and grid builders");
  if (manifest.replications == 0)
    throw std::invalid_argument("Registry::add: manifest '" + manifest.name +
                                "' needs replications >= 1");
  manifests_.push_back(std::move(manifest));
}

const Manifest* Registry::find(std::string_view name) const {
  for (const Manifest& m : manifests_)
    if (m.name == name) return &m;
  return nullptr;
}

const Manifest& Registry::at(std::string_view name) const {
  if (const Manifest* m = find(name)) return *m;
  std::string message = "unknown manifest: " + std::string(name) + " (known:";
  for (const Manifest& m : manifests_) message += " " + m.name;
  throw std::invalid_argument(message + ")");
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> names;
  names.reserve(manifests_.size());
  for (const Manifest& m : manifests_) names.push_back(m.name);
  return names;
}

const Manifest& find_manifest(std::string_view name) {
  return builtin_registry().at(name);
}

}  // namespace dsrt::xp
