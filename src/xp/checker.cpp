#include "dsrt/xp/checker.hpp"

#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "dsrt/xp/json.hpp"

namespace dsrt::xp {

namespace {

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

std::string num(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

std::string kind_name(MetricSpec::Kind kind) {
  return kind == MetricSpec::Kind::Exact ? "exact" : "relative";
}

MetricSpec::Kind parse_kind(const std::string& name) {
  if (name == "exact") return MetricSpec::Kind::Exact;
  if (name == "relative") return MetricSpec::Kind::Relative;
  throw std::runtime_error("unknown metric kind '" + name + "'");
}

std::string describe_value(double v) {
  return hexfloat(v) + " (" + num(v) + ")";
}

std::string point_label(const std::vector<std::string>& axis_names,
                        const std::vector<std::string>& labels) {
  std::string out;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ", ";
    if (i < axis_names.size()) out += axis_names[i] + "=";
    out += labels[i];
  }
  return out;
}

}  // namespace

Expectations make_expectations(const Manifest& manifest,
                               const std::vector<PointRecord>& merged) {
  Expectations expectations;
  expectations.manifest = manifest.name;
  expectations.points = merged.size();
  for (const MetricSpec& metric : manifest.metrics)
    expectations.bands.push_back(
        {metric.name, metric.kind, metric.rel_tol, metric.abs_tol});
  for (const PointRecord& record : merged) {
    ExpectedPoint point;
    point.index = record.index;
    point.labels = record.labels;
    point.config_hash = record.config_hash;
    point.metrics = record.metrics;
    expectations.values.push_back(std::move(point));
  }
  return expectations;
}

std::string expectations_json(const Expectations& expectations) {
  std::ostringstream os;
  os << "{\n  \"manifest\": " << quoted(expectations.manifest)
     << ",\n  \"schema\": 1,\n  \"points\": " << expectations.points
     << ",\n  \"bands\": [\n";
  for (std::size_t i = 0; i < expectations.bands.size(); ++i) {
    const MetricBand& band = expectations.bands[i];
    os << "    {\"name\": " << quoted(band.name) << ", \"kind\": "
       << quoted(kind_name(band.kind));
    if (band.kind == MetricSpec::Kind::Relative)
      os << ", \"rel_tol\": " << num(band.rel_tol)
         << ", \"abs_tol\": " << num(band.abs_tol);
    os << "}" << (i + 1 < expectations.bands.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"values\": [\n";
  for (std::size_t i = 0; i < expectations.values.size(); ++i) {
    const ExpectedPoint& point = expectations.values[i];
    os << "    {\"index\": " << point.index << ", \"labels\": [";
    for (std::size_t j = 0; j < point.labels.size(); ++j)
      os << (j ? ", " : "") << quoted(point.labels[j]);
    os << "], \"config_hash\": " << quoted(point.config_hash)
       << ", \"metrics\": {";
    for (std::size_t j = 0; j < point.metrics.size(); ++j)
      os << (j ? ", " : "") << quoted(point.metrics[j].first) << ": "
         << quoted(hexfloat(point.metrics[j].second));
    os << "}}" << (i + 1 < expectations.values.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

Expectations parse_expectations(const std::string& text) {
  const JsonValue doc = parse_json(text);
  if (doc.at("schema").as_number() != 1)
    throw std::runtime_error("unsupported expectations schema");
  Expectations expectations;
  expectations.manifest = doc.at("manifest").as_string();
  expectations.points =
      static_cast<std::size_t>(doc.at("points").as_number());
  for (const JsonValue& band_doc : doc.at("bands").as_array()) {
    MetricBand band;
    band.name = band_doc.at("name").as_string();
    band.kind = parse_kind(band_doc.at("kind").as_string());
    if (const JsonValue* rel = band_doc.get("rel_tol"))
      band.rel_tol = rel->as_number();
    if (const JsonValue* abs = band_doc.get("abs_tol"))
      band.abs_tol = abs->as_number();
    expectations.bands.push_back(std::move(band));
  }
  for (const JsonValue& value_doc : doc.at("values").as_array()) {
    ExpectedPoint point;
    point.index =
        static_cast<std::size_t>(value_doc.at("index").as_number());
    for (const JsonValue& label : value_doc.at("labels").as_array())
      point.labels.push_back(label.as_string());
    point.config_hash = value_doc.at("config_hash").as_string();
    for (const auto& [name, value] : value_doc.at("metrics").as_object())
      point.metrics.emplace_back(name, parse_hexfloat(value.as_string()));
    expectations.values.push_back(std::move(point));
  }
  return expectations;
}

std::string expectations_path(const std::string& manifest,
                              const std::string& dir) {
  return dir + "/" + manifest + ".json";
}

std::string write_expectations(const Expectations& expectations,
                               const std::string& dir) {
  const std::string path = expectations_path(expectations.manifest, dir);
  std::ofstream file(path);
  if (!file)
    throw std::runtime_error("cannot open expectation file " + path);
  file << expectations_json(expectations);
  if (!file.good())
    throw std::runtime_error("write failed for expectation file " + path);
  return path;
}

Expectations load_expectations(const std::string& path) {
  std::ifstream file(path);
  if (!file)
    throw std::runtime_error("cannot open expectation file " + path);
  std::ostringstream text;
  text << file.rdbuf();
  try {
    return parse_expectations(text.str());
  } catch (const std::exception& error) {
    throw std::runtime_error(path + ": " + error.what());
  }
}

CheckReport check_records(const Manifest& manifest,
                          const std::vector<PointRecord>& merged,
                          const Expectations& expectations) {
  if (expectations.manifest != manifest.name)
    throw std::runtime_error("expectations are for manifest '" +
                             expectations.manifest + "', not '" +
                             manifest.name + "'");
  const std::vector<engine::SweepPoint> points = manifest.expand();
  if (merged.size() != points.size())
    throw std::runtime_error(
        "check: merged record set has " + std::to_string(merged.size()) +
        " points, current grid has " + std::to_string(points.size()));
  if (expectations.values.size() != points.size() ||
      expectations.points != points.size())
    throw std::runtime_error(
        "check: expectations hold " +
        std::to_string(expectations.values.size()) +
        " points, current grid has " + std::to_string(points.size()) +
        " — the manifest changed; re-bless");

  const std::vector<std::string> axis_names = manifest.grid().axis_names();
  CheckReport report;
  report.manifest = manifest.name;

  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointRecord& record = merged[i];
    const ExpectedPoint& expected = expectations.values[i];
    if (record.index != i || expected.index != i)
      throw std::runtime_error("check: records not in index order at " +
                               std::to_string(i));
    const std::string label = point_label(axis_names, record.labels);
    ++report.points_checked;

    const std::string current_hash = point_config_hash(manifest, points[i]);
    if (expected.config_hash != current_hash) {
      report.failures.push_back(
          {i, label, "(config)",
           "expectation blessed from a different grid definition (hash " +
               expected.config_hash + ", current " + current_hash +
               ") — re-bless after intentional manifest changes"});
      continue;
    }

    for (const MetricBand& band : expectations.bands) {
      const double* actual = record.metric(band.name);
      const double* want = nullptr;
      for (const auto& [name, value] : expected.metrics)
        if (name == band.name) want = &value;
      if (!actual || !want) {
        report.failures.push_back(
            {i, label, band.name,
             std::string("metric missing from ") +
                 (!actual ? "the merged artifact" : "the expectations")});
        continue;
      }
      ++report.metrics_checked;
      if (band.kind == MetricSpec::Kind::Exact) {
        if (!bits_equal(*actual, *want))
          report.failures.push_back(
              {i, label, band.name,
               "expected " + describe_value(*want) + ", got " +
                   describe_value(*actual) + " [exact]"});
      } else {
        // Ratio band, symmetric in both directions: a linear band
        // (rel_tol * |expected|) could never flag a slowdown — the
        // deviation below is bounded by |expected| itself — so rate
        // metrics are checked multiplicatively instead.
        const double factor = 1.0 + band.rel_tol;
        const double lo = std::min(std::fabs(*actual), std::fabs(*want));
        const double hi = std::max(std::fabs(*actual), std::fabs(*want));
        const bool same_sign = (*actual >= 0) == (*want >= 0);
        if (std::fabs(*actual - *want) > band.abs_tol &&
            (!same_sign || hi > factor * lo))
          report.failures.push_back(
              {i, label, band.name,
               "expected within " + num(factor) + "x of " + num(*want) +
                   ", got " + num(*actual) + " [relative]"});
      }
    }
  }
  return report;
}

std::string format_report(const CheckReport& report) {
  std::ostringstream os;
  for (const CheckFailure& failure : report.failures)
    os << report.manifest << " point " << failure.index << " ("
       << failure.point << ") metric " << failure.metric << ": "
       << failure.detail << "\n";
  if (report.ok())
    os << report.manifest << ": OK (" << report.points_checked
       << " points, " << report.metrics_checked << " metric checks within "
       << "bands)\n";
  else
    os << report.manifest << ": FAIL (" << report.failures.size()
       << " failure(s) over " << report.points_checked << " points)\n";
  return os.str();
}

}  // namespace dsrt::xp
