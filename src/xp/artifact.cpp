#include "dsrt/xp/artifact.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "dsrt/xp/json.hpp"

namespace dsrt::xp {

namespace {

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

/// Bitwise double equality (the artifacts never hold NaN; -0 vs +0 is a
/// real difference worth flagging).
bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

std::size_t as_index(const JsonValue& v, const char* what) {
  const double d = v.as_number();
  if (d < 0 || d != static_cast<double>(static_cast<std::size_t>(d)))
    throw std::runtime_error(std::string("bad ") + what);
  return static_cast<std::size_t>(d);
}

}  // namespace

const double* PointRecord::metric(std::string_view name) const {
  for (const auto& [metric_name, value] : metrics)
    if (metric_name == name) return &value;
  return nullptr;
}

std::string hexfloat(double v) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%a", v);
  return buffer;
}

double parse_hexfloat(const std::string& text) {
  if (text.empty()) throw std::runtime_error("empty numeric value");
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size())
    throw std::runtime_error("bad numeric value '" + text + "'");
  return v;
}

std::uint64_t fnv1a64(std::string_view data, std::uint64_t basis) {
  std::uint64_t hash = basis;
  for (char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string point_config_hash(const Manifest& manifest,
                              const engine::SweepPoint& point) {
  std::uint64_t hash = fnv1a64(manifest.name);
  hash = fnv1a64(std::to_string(manifest.replications), hash);
  hash = fnv1a64(std::to_string(point.ordinal), hash);
  for (const std::string& label : point.labels) hash = fnv1a64(label, hash);
  hash = fnv1a64(std::to_string(point.config.seed), hash);
  hash = fnv1a64(hexfloat(point.config.horizon), hash);
  hash = fnv1a64(hexfloat(point.config.warmup), hash);
  hash = fnv1a64(point.config.describe(), hash);
  char buffer[20];
  std::snprintf(buffer, sizeof(buffer), "%016" PRIx64, hash);
  return buffer;
}

std::string shard_file_name(const std::string& manifest,
                            std::size_t shard_index,
                            std::size_t shard_count) {
  return manifest + ".shard-" + std::to_string(shard_index) + "-of-" +
         std::to_string(shard_count) + ".jsonl";
}

std::string merged_file_name(const std::string& manifest) {
  return manifest + ".merged.jsonl";
}

std::string artifact_line(const std::string& manifest,
                          const PointRecord& record) {
  std::ostringstream os;
  os << "{\"manifest\":" << quoted(manifest) << ",\"schema\":1"
     << ",\"index\":" << record.index << ",\"total\":" << record.total
     << ",\"labels\":[";
  for (std::size_t i = 0; i < record.labels.size(); ++i)
    os << (i ? "," : "") << quoted(record.labels[i]);
  os << "],\"config_hash\":" << quoted(record.config_hash)
     << ",\"seed\":" << quoted(std::to_string(record.seed))
     << ",\"reps\":" << record.replications
     << ",\"wall_seconds\":" << quoted(hexfloat(record.wall_seconds))
     << ",\"metrics\":{";
  for (std::size_t i = 0; i < record.metrics.size(); ++i)
    os << (i ? "," : "") << quoted(record.metrics[i].first) << ":"
       << quoted(hexfloat(record.metrics[i].second));
  os << "}}";
  return os.str();
}

PointRecord parse_artifact_line(const std::string& manifest,
                                const std::string& line) {
  const JsonValue doc = parse_json(line);
  if (doc.at("manifest").as_string() != manifest)
    throw std::runtime_error("record belongs to manifest '" +
                             doc.at("manifest").as_string() + "', expected '" +
                             manifest + "'");
  if (doc.at("schema").as_number() != 1)
    throw std::runtime_error("unsupported record schema");
  PointRecord record;
  record.index = as_index(doc.at("index"), "index");
  record.total = as_index(doc.at("total"), "total");
  for (const JsonValue& label : doc.at("labels").as_array())
    record.labels.push_back(label.as_string());
  record.config_hash = doc.at("config_hash").as_string();
  record.seed = std::strtoull(doc.at("seed").as_string().c_str(), nullptr, 10);
  record.replications = as_index(doc.at("reps"), "reps");
  record.wall_seconds = parse_hexfloat(doc.at("wall_seconds").as_string());
  for (const auto& [name, value] : doc.at("metrics").as_object())
    record.metrics.emplace_back(name, parse_hexfloat(value.as_string()));
  if (record.index >= record.total)
    throw std::runtime_error("index " + std::to_string(record.index) +
                             " out of range (total " +
                             std::to_string(record.total) + ")");
  return record;
}

std::vector<PointRecord> load_artifact_file(const std::string& manifest,
                                            const std::string& path) {
  std::ifstream file(path);
  if (!file)
    throw std::runtime_error("cannot open shard artifact " + path);
  std::vector<PointRecord> records;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(file, line)) {
    ++line_number;
    if (line.empty()) continue;
    try {
      records.push_back(parse_artifact_line(manifest, line));
    } catch (const std::exception& error) {
      // A torn final line from an interrupted writer lands here too: the
      // caller gets the exact file and line to inspect or delete — the
      // harness never half-merges a corrupt shard.
      throw std::runtime_error(path + ":" + std::to_string(line_number) +
                               ": corrupt shard record: " + error.what());
    }
  }
  if (file.bad())
    throw std::runtime_error(path + ": read failed");
  return records;
}

void append_artifact_records(const std::string& manifest,
                             const std::string& path,
                             const std::vector<PointRecord>& records) {
  std::ofstream file(path, std::ios::app);
  if (!file)
    throw std::runtime_error("cannot open shard artifact " + path +
                             " for append");
  for (const PointRecord& record : records) {
    file << artifact_line(manifest, record) << '\n';
    file.flush();
  }
  if (!file.good())
    throw std::runtime_error("write failed for shard artifact " + path);
}

std::vector<PointRecord> merge_artifacts(const Manifest& manifest,
                                         const std::string& out_dir) {
  const std::vector<engine::SweepPoint> points = manifest.expand();
  const std::string prefix = manifest.name + ".shard-";

  std::vector<std::string> shard_paths;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(out_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) == 0 &&
        name.size() > prefix.size() + 6 &&
        name.compare(name.size() - 6, 6, ".jsonl") == 0)
      shard_paths.push_back(entry.path().string());
  }
  if (ec)
    throw std::runtime_error("cannot scan artifact directory " + out_dir +
                             ": " + ec.message());
  std::sort(shard_paths.begin(), shard_paths.end());
  if (shard_paths.empty())
    throw std::runtime_error("no shard artifacts for manifest '" +
                             manifest.name + "' under " + out_dir +
                             " (expected " + prefix + "*.jsonl)");

  std::vector<PointRecord> merged(points.size());
  std::vector<std::string> source(points.size());
  for (const std::string& path : shard_paths) {
    for (PointRecord& record : load_artifact_file(manifest.name, path)) {
      if (record.index >= points.size() || record.total != points.size())
        throw std::runtime_error(
            path + ": record index " + std::to_string(record.index) + "/" +
            std::to_string(record.total) +
            " does not fit the current grid (" +
            std::to_string(points.size()) +
            " points) — stale artifact? delete and re-run");
      const std::string expected_hash =
          point_config_hash(manifest, points[record.index]);
      if (record.config_hash != expected_hash)
        throw std::runtime_error(
            path + ": config hash mismatch at index " +
            std::to_string(record.index) + " (artifact " +
            record.config_hash + ", current definition " + expected_hash +
            ") — the manifest changed since this artifact was written; "
            "delete and re-run");
      if (!source[record.index].empty()) {
        const PointRecord& prior = merged[record.index];
        bool identical = prior.metrics.size() == record.metrics.size();
        for (std::size_t i = 0; identical && i < prior.metrics.size(); ++i) {
          const MetricSpec* spec =
              manifest.metric(prior.metrics[i].first);
          const bool exact =
              !spec || spec->kind == MetricSpec::Kind::Exact;
          identical = prior.metrics[i].first == record.metrics[i].first &&
                      (!exact || bits_equal(prior.metrics[i].second,
                                            record.metrics[i].second));
        }
        if (!identical)
          throw std::runtime_error(
              path + ": index " + std::to_string(record.index) +
              " conflicts with the record in " + source[record.index] +
              " — overlapping shards disagree");
        continue;
      }
      source[record.index] = path;
      merged[record.index] = std::move(record);
    }
  }

  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < points.size(); ++i)
    if (source[i].empty()) missing.push_back(i);
  if (!missing.empty()) {
    std::string detail;
    for (std::size_t i = 0; i < missing.size() && i < 8; ++i)
      detail += (i ? ", " : "") + std::to_string(missing[i]);
    if (missing.size() > 8) detail += ", ...";
    throw std::runtime_error(
        "manifest '" + manifest.name + "' is incomplete under " + out_dir +
        ": " + std::to_string(missing.size()) + " of " +
        std::to_string(points.size()) + " points missing (indices " + detail +
        ") — run the remaining shards or --resume");
  }
  return merged;
}

std::string write_merged_artifact(const Manifest& manifest,
                                  const std::vector<PointRecord>& records,
                                  const std::string& out_dir) {
  const std::string path = out_dir + "/" + merged_file_name(manifest.name);
  std::ofstream file(path);
  if (!file)
    throw std::runtime_error("cannot open " + path);
  for (const PointRecord& record : records)
    file << artifact_line(manifest.name, record) << '\n';
  if (!file.good())
    throw std::runtime_error("write failed for " + path);
  return path;
}

}  // namespace dsrt::xp
