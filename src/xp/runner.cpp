#include "dsrt/xp/runner.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "dsrt/engine/runner.hpp"

namespace dsrt::xp {

namespace {

bool parse_size(std::string_view text, std::size_t& out) {
  if (text.empty()) return false;
  std::size_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  out = value;
  return true;
}

}  // namespace

ShardSpec ShardSpec::parse(std::string_view text) {
  const auto slash = text.find('/');
  ShardSpec spec;
  const bool shape_ok =
      slash != std::string_view::npos &&
      parse_size(text.substr(0, slash), spec.index) &&
      parse_size(text.substr(slash + 1), spec.count);
  if (!shape_ok)
    throw std::invalid_argument("bad shard spec '" + std::string(text) +
                                "' (expected I/N with decimal integers)");
  if (spec.count == 0)
    throw std::invalid_argument("bad shard spec '" + std::string(text) +
                                "': N must be >= 1");
  if (spec.index >= spec.count)
    throw std::invalid_argument("bad shard spec '" + std::string(text) +
                                "': I must satisfy 0 <= I < N");
  return spec;
}

PointRecord run_point(const Manifest& manifest,
                      const engine::SweepPoint& point, std::size_t jobs) {
  engine::RunnerOptions options;
  options.jobs = jobs;
  const engine::Runner runner(options);

  const auto start = std::chrono::steady_clock::now();
  const system::ExperimentResult result =
      runner.run_replications(point.config, manifest.replications);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  PointRecord record;
  record.index = point.ordinal;
  record.labels = point.labels;
  record.config_hash = point_config_hash(manifest, point);
  record.seed = point.config.seed;
  record.replications = manifest.replications;
  record.wall_seconds = wall;
  const PointRun run{result, wall};
  for (const MetricSpec& metric : manifest.metrics)
    record.metrics.emplace_back(metric.name, metric.select(run));
  return record;
}

RunSummary run_manifest(const Manifest& manifest,
                        const RunManifestOptions& options) {
  if (options.shard.count == 0 || options.shard.index >= options.shard.count)
    throw std::invalid_argument("run_manifest: bad shard " +
                                std::to_string(options.shard.index) + "/" +
                                std::to_string(options.shard.count));

  const std::vector<engine::SweepPoint> points = manifest.expand();
  const std::string path =
      options.out_dir + "/" +
      shard_file_name(manifest.name, options.shard.index,
                      options.shard.count);

  RunSummary summary;
  summary.path = path;
  summary.grid_points = points.size();

  // Which indices the artifact already holds. Resume verifies the whole
  // file up front — a truncated line or a record from an older grid
  // definition fails here, before anything is simulated or appended.
  std::vector<bool> completed(points.size(), false);
  if (options.resume && std::filesystem::exists(path)) {
    for (const PointRecord& record :
         load_artifact_file(manifest.name, path)) {
      if (record.index >= points.size() || record.total != points.size())
        throw std::runtime_error(
            path + ": record index " + std::to_string(record.index) + "/" +
            std::to_string(record.total) +
            " does not fit the current grid (" +
            std::to_string(points.size()) + " points) — stale artifact");
      if (!options.shard.owns(record.index))
        throw std::runtime_error(
            path + ": record index " + std::to_string(record.index) +
            " does not belong to shard " +
            std::to_string(options.shard.index) + "/" +
            std::to_string(options.shard.count));
      const std::string expected_hash =
          point_config_hash(manifest, points[record.index]);
      if (record.config_hash != expected_hash)
        throw std::runtime_error(
            path + ": config hash mismatch at index " +
            std::to_string(record.index) +
            " — the manifest definition changed; delete the artifact and "
            "re-run");
      if (completed[record.index])
        throw std::runtime_error(path + ": duplicate record for index " +
                                 std::to_string(record.index));
      completed[record.index] = true;
      ++summary.resumed;
      if (options.on_point) options.on_point(record, /*resumed=*/true);
    }
  } else {
    // Fresh run: start the artifact empty rather than appending to a
    // previous attempt's records.
    std::ofstream truncate(path, std::ios::trunc);
    if (!truncate)
      throw std::runtime_error("cannot open shard artifact " + path +
                               " for writing");
  }

  for (const engine::SweepPoint& point : points) {
    if (!options.shard.owns(point.ordinal)) continue;
    ++summary.shard_points;
    if (completed[point.ordinal]) continue;
    PointRecord record = run_point(manifest, point, options.jobs);
    record.total = points.size();
    append_artifact_records(manifest.name, path, {record});
    ++summary.ran;
    if (options.on_point) options.on_point(record, /*resumed=*/false);
  }
  return summary;
}

PointRecord reproduce_point(const Manifest& manifest, std::size_t index,
                            std::size_t jobs) {
  const std::vector<engine::SweepPoint> points = manifest.expand();
  if (index >= points.size())
    throw std::invalid_argument(
        "reproduce: index " + std::to_string(index) +
        " out of range (manifest '" + manifest.name + "' has " +
        std::to_string(points.size()) + " points)");
  PointRecord record = run_point(manifest, points[index], jobs);
  record.total = points.size();
  return record;
}

}  // namespace dsrt::xp
