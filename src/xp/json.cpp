#include "dsrt/xp/json.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace dsrt::xp {

namespace {

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw std::runtime_error("json: " + what + " at offset " +
                           std::to_string(pos));
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing characters");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c)
      fail(pos_, std::string("expected '") + c + "', got '" + peek() + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::string(parse_string());
      case 't':
        if (!consume_literal("true")) fail(pos_, "bad literal");
        return JsonValue::boolean(true);
      case 'f':
        if (!consume_literal("false")) fail(pos_, "bad literal");
        return JsonValue::boolean(false);
      case 'n':
        if (!consume_literal("null")) fail(pos_, "bad literal");
        return JsonValue::null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    std::map<std::string, JsonValue> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::object(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.insert_or_assign(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue::object(std::move(members));
    }
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue::array(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          // The harness only emits ASCII; decode BMP escapes to keep the
          // parser honest on foreign input.
          if (pos_ + 4 > text_.size()) fail(pos_, "bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail(pos_, "bad \\u escape");
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail(pos_, "unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-'))
      fail(start, "bad number");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail(start, "bad number");
    return JsonValue::number(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void wrong_kind(const char* want) {
  throw std::runtime_error(std::string("json: value is not a ") + want);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::Bool) wrong_kind("bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::Number) wrong_kind("number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::String) wrong_kind("string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::Array) wrong_kind("array");
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::as_object() const {
  if (kind_ != Kind::Object) wrong_kind("object");
  return object_;
}

const JsonValue* JsonValue::get(const std::string& key) const {
  if (kind_ != Kind::Object) wrong_kind("object");
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = get(key);
  if (!v) throw std::runtime_error("json: missing key '" + key + "'");
  return *v;
}

JsonValue JsonValue::null() { return JsonValue{}; }

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double d) {
  JsonValue v;
  v.kind_ = Kind::Number;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::String;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::Array;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::object(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::Object;
  v.object_ = std::move(members);
  return v;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace dsrt::xp
