#include "dsrt/engine/thread_pool.hpp"

#include <algorithm>
#include <exception>

namespace dsrt::engine {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_jobs();
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
    stop_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(job));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

std::size_t ThreadPool::default_jobs() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    job();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
    }
    idle_.notify_all();
  }
}

void parallel_for_index(ThreadPool& pool, std::size_t n,
                        const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::exception_ptr first_error;
  std::mutex error_mutex;
  // Completion latch. `remaining` is only touched under `done_mutex`: the
  // caller's wait can then never observe zero and unwind these stack
  // locals while a worker still holds (or is about to take) the lock.
  std::size_t remaining = n;
  std::mutex done_mutex;
  std::condition_variable done;
  std::size_t submitted = 0;
  std::exception_ptr submit_error;
  try {
    for (std::size_t i = 0; i < n; ++i) {
      pool.submit([&, i] {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        std::lock_guard lock(done_mutex);
        if (--remaining == 0) done.notify_all();
      });
      ++submitted;
    }
  } catch (...) {
    // submit itself failed (allocation). Units never enqueued can't
    // complete; still drain the ones that were, so their lambdas cannot
    // touch this latch after the stack frame unwinds.
    submit_error = std::current_exception();
  }
  {
    std::unique_lock lock(done_mutex);
    remaining -= n - submitted;
    done.wait(lock, [&] { return remaining == 0; });
  }
  if (submit_error) std::rethrow_exception(submit_error);
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace dsrt::engine
