#include "dsrt/engine/sweep.hpp"

#include <stdexcept>

#include "dsrt/core/parallel_strategies.hpp"
#include "dsrt/core/serial_strategies.hpp"
#include "dsrt/fault/spec.hpp"
#include "dsrt/sched/abort_policy.hpp"
#include "dsrt/sched/policy.hpp"
#include "dsrt/stats/report.hpp"
#include "dsrt/system/baseline.hpp"
#include "dsrt/util/flags.hpp"
#include "dsrt/workload/arrival.hpp"
#include "dsrt/workload/pex_error.hpp"
#include "dsrt/workload/service.hpp"

namespace dsrt::engine {

namespace {

double parse_double(const std::string& field, const std::string& text) {
  const auto v = util::parse_double(text);
  if (!v)
    throw std::invalid_argument("SweepAxis::by_field: bad value '" + text +
                                "' for field '" + field + "'");
  return *v;
}

/// Strict non-negative integer parse, so a label like "4.7" can never end
/// up naming a silently truncated nodes/m value.
std::size_t parse_count(const std::string& field, const std::string& text) {
  try {
    std::size_t used = 0;
    const long v = std::stol(text, &used);
    if (used != text.size() || v < 0) throw std::invalid_argument(text);
    return static_cast<std::size_t>(v);
  } catch (const std::exception&) {
    throw std::invalid_argument("SweepAxis::by_field: bad value '" + text +
                                "' for integer field '" + field + "'");
  }
}

}  // namespace

SweepAxis SweepAxis::numeric(std::string name,
                             const std::vector<double>& values,
                             std::function<void(system::Config&, double)> set,
                             int precision) {
  SweepAxis axis;
  axis.name = std::move(name);
  for (double v : values) {
    axis.labels.push_back(stats::Table::cell(v, precision));
    axis.apply.push_back([set, v](system::Config& cfg) { set(cfg, v); });
  }
  return axis;
}

SweepAxis SweepAxis::choices(
    std::string name,
    std::vector<std::pair<std::string, std::function<void(system::Config&)>>>
        options) {
  SweepAxis axis;
  axis.name = std::move(name);
  for (auto& [label, fn] : options) {
    axis.labels.push_back(std::move(label));
    axis.apply.push_back(std::move(fn));
  }
  return axis;
}

SweepAxis SweepAxis::by_field(const std::string& field,
                              const std::vector<std::string>& values) {
  SweepAxis axis;
  axis.name = field;
  for (const std::string& value : values) {
    axis.labels.push_back(value);
    std::function<void(system::Config&)> fn;
    if (field == "load") {
      const double v = parse_double(field, value);
      fn = [v](system::Config& c) { c.load = v; };
    } else if (field == "frac_local") {
      const double v = parse_double(field, value);
      fn = [v](system::Config& c) { c.frac_local = v; };
    } else if (field == "rel_flex") {
      const double v = parse_double(field, value);
      fn = [v](system::Config& c) { c.rel_flex = v; };
    } else if (field == "horizon") {
      const double v = parse_double(field, value);
      fn = [v](system::Config& c) { c.horizon = v; };
    } else if (field == "warmup") {
      const double v = parse_double(field, value);
      fn = [v](system::Config& c) { c.warmup = v; };
    } else if (field == "nodes") {
      const std::size_t v = parse_count(field, value);
      fn = [v](system::Config& c) { c.nodes = v; };
    } else if (field == "m") {
      const std::size_t v = parse_count(field, value);
      fn = [v](system::Config& c) { c.subtasks = v; };
    } else if (field == "pex_err") {
      const double v = parse_double(field, value);
      fn = [v](system::Config& c) {
        c.pex_error = v > 0 ? workload::make_uniform_relative_error(v)
                            : workload::make_perfect_prediction();
      };
    } else if (field == "ssp") {
      const auto s = core::serial_strategy_by_name(value);
      fn = [s](system::Config& c) { c.ssp = s; };
    } else if (field == "psp") {
      const auto s = core::parallel_strategy_by_name(value);
      fn = [s](system::Config& c) { c.psp = s; };
    } else if (field == "load_model") {
      // Specs (not live models) sweep safely: each run builds its own
      // accounts/snapshots, so points never share mutable state.
      const auto spec = core::LoadModelSpec::parse(value);
      fn = [spec](system::Config& c) { c.load_model = spec; };
    } else if (field == "placement") {
      // Also a spec: the jsq tie-break rotation is per-run state, built
      // fresh inside every SimulationRun.
      const auto spec = core::PlacementSpec::parse(value);
      fn = [spec](system::Config& c) { c.placement = spec; };
    } else if (field == "faults") {
      // A spec too: the injector (rng stream, per-node outage clocks) is
      // per-run state, built fresh inside every SimulationRun.
      const auto spec = fault::FaultSpec::parse(value);
      fn = [spec](system::Config& c) { c.faults = spec; };
    } else if (field == "event_queue") {
      // Layout sweeps A/B the pending-set implementation; the trajectory
      // (and thus every metric) is mode-invariant, so only ev/s moves.
      const auto mode = sim::parse_queue_mode(value);
      fn = [mode](system::Config& c) { c.event_queue = mode; };
    } else if (field == "arrivals") {
      // A spec again: every run builds its own process instances, so
      // sweep points (and concurrent replications) share no phase state.
      const auto spec = workload::ArrivalSpec::parse(value);
      fn = [spec](system::Config& c) { c.arrivals = spec; };
    } else if (field == "service") {
      // Matched-mean: the law swaps around the base config's subtask mean,
      // so the offered load is identical across the axis.
      const auto spec = workload::ServiceSpec::parse(value);
      fn = [spec](system::Config& c) {
        c.subtask_exec = spec.make(c.subtask_exec->mean());
      };
    } else if (field == "policy") {
      const auto p = sched::policy_by_name(value);
      fn = [p](system::Config& c) { c.policy = p; };
    } else if (field == "abort") {
      const auto p = sched::abort_policy_by_name(value);
      fn = [p](system::Config& c) { c.abort_policy = p; };
    } else if (field == "shape") {
      // A shape switch is not just the enum: each shape's section baseline
      // pins its own slack distributions / stage structure (Section 5.2's
      // U[1.25,5.0] for parallel, the 3-stage sp_shape for combined).
      // Mirror config_from_flags, which starts from the shape's baseline.
      system::Config shaped;
      if (value == "serial") {
        shaped = system::baseline_ssp();
      } else if (value == "parallel") {
        shaped = system::baseline_psp();
      } else if (value == "serial-parallel") {
        shaped = system::baseline_combined();
      } else {
        throw std::invalid_argument("SweepAxis::by_field: unknown shape '" +
                                    value + "'");
      }
      fn = [shaped](system::Config& c) {
        c.shape = shaped.shape;
        c.local_slack = shaped.local_slack;
        c.parallel_slack = shaped.parallel_slack;
        c.sp_shape = shaped.sp_shape;
      };
    } else {
      throw std::invalid_argument("SweepAxis::by_field: unknown field '" +
                                  field + "'");
    }
    axis.apply.push_back(std::move(fn));
  }
  return axis;
}

SweepGrid& SweepGrid::axis(SweepAxis a) {
  axes_.push_back(std::move(a));
  return *this;
}

SweepGrid& SweepGrid::mode(Mode m) {
  mode_ = m;
  return *this;
}

std::vector<std::string> SweepGrid::axis_names() const {
  std::vector<std::string> names;
  names.reserve(axes_.size());
  for (const auto& axis : axes_) names.push_back(axis.name);
  return names;
}

std::size_t SweepGrid::points() const {
  if (axes_.empty()) return 1;
  if (mode_ == Mode::Zipped) return axes_.front().size();
  std::size_t n = 1;
  for (const auto& axis : axes_) n *= axis.size();
  return n;
}

std::vector<SweepPoint> SweepGrid::expand(const system::Config& base) const {
  for (const auto& axis : axes_) {
    if (axis.size() == 0)
      throw std::invalid_argument("SweepGrid: axis '" + axis.name +
                                  "' has no values");
    if (axis.labels.size() != axis.apply.size())
      throw std::invalid_argument("SweepGrid: axis '" + axis.name +
                                  "' labels/mutators size mismatch");
    if (mode_ == Mode::Zipped && axis.size() != axes_.front().size())
      throw std::invalid_argument(
          "SweepGrid: zipped axes must have equal lengths ('" + axis.name +
          "' vs '" + axes_.front().name + "')");
  }

  std::vector<SweepPoint> out;
  out.reserve(points());
  if (axes_.empty()) {
    SweepPoint point;
    point.config = base;
    out.push_back(std::move(point));
    return out;
  }

  if (mode_ == Mode::Zipped) {
    for (std::size_t i = 0; i < axes_.front().size(); ++i) {
      SweepPoint point;
      point.ordinal = i;
      point.config = base;
      for (const auto& axis : axes_) {
        point.labels.push_back(axis.labels[i]);
        point.indices.push_back(i);
        axis.apply[i](point.config);
      }
      out.push_back(std::move(point));
    }
    return out;
  }

  // Cartesian: odometer over the axis indices, last axis fastest.
  std::vector<std::size_t> indices(axes_.size(), 0);
  const std::size_t total = points();
  for (std::size_t ordinal = 0; ordinal < total; ++ordinal) {
    SweepPoint point;
    point.ordinal = ordinal;
    point.indices = indices;
    point.config = base;
    for (std::size_t a = 0; a < axes_.size(); ++a) {
      point.labels.push_back(axes_[a].labels[indices[a]]);
      axes_[a].apply[indices[a]](point.config);
    }
    out.push_back(std::move(point));
    for (std::size_t a = axes_.size(); a-- > 0;) {
      if (++indices[a] < axes_[a].size()) break;
      indices[a] = 0;
    }
  }
  return out;
}

}  // namespace dsrt::engine
