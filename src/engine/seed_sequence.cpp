#include "dsrt/engine/seed_sequence.hpp"

namespace dsrt::engine {

namespace {

/// splitmix64 finalizer (Vigna) — the same mixing family the sim::Rng uses
/// for stream derivation, so per-point seeds are as independent as the
/// per-stream states.
std::uint64_t splitmix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t SeedSequence::mix(std::uint64_t base,
                                std::uint64_t index) noexcept {
  if (index == 0) return base;
  return splitmix64(base + index * 0x9e3779b97f4a7c15ULL);
}

std::uint64_t SeedSequence::seed_for(std::uint64_t index) const noexcept {
  return mix(base_, index);
}

}  // namespace dsrt::engine
