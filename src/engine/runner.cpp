#include "dsrt/engine/runner.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "dsrt/engine/seed_sequence.hpp"
#include "dsrt/engine/thread_pool.hpp"
#include "dsrt/system/simulation.hpp"

namespace dsrt::engine {

Runner::Runner(RunnerOptions options)
    : options_(options),
      jobs_(options.jobs == 0 ? ThreadPool::default_jobs() : options.jobs) {}

system::ExperimentResult Runner::run_replications(
    const system::Config& config, std::size_t replications) const {
  if (replications == 0)
    throw std::invalid_argument("Runner::run_replications: zero replications");
  config.validate();

  std::vector<system::RunMetrics> runs(replications);
  ThreadPool pool(std::min(jobs_, replications));
  parallel_for_index(pool, replications, [&](std::size_t r) {
    runs[r] = system::simulate(config, r);
  });
  return system::aggregate_runs(std::move(runs), options_.confidence);
}

SweepResult Runner::run_sweep(const SweepGrid& grid,
                              const system::Config& base,
                              std::size_t replications) const {
  if (replications == 0)
    throw std::invalid_argument("Runner::run_sweep: zero replications");
  const auto start = std::chrono::steady_clock::now();

  std::vector<SweepPoint> points = grid.expand(base);
  if (options_.reseed_points) {
    const SeedSequence seeds(base.seed);
    for (SweepPoint& point : points)
      point.config.seed = seeds.seed_for(point.ordinal);
  }
  for (const SweepPoint& point : points) point.config.validate();

  // Flatten to (point, replication) units so narrow-but-deep and
  // wide-but-shallow studies both saturate the pool.
  const std::size_t total = points.size() * replications;
  const std::size_t pool_size = std::min(jobs_, total);
  std::vector<std::vector<system::RunMetrics>> runs(points.size());
  for (auto& per_point : runs)
    per_point.resize(replications);
  {
    ThreadPool pool(pool_size);
    parallel_for_index(pool, total, [&](std::size_t unit) {
      const std::size_t p = unit / replications;
      const std::size_t r = unit % replications;
      runs[p][r] = system::simulate(points[p].config, r);
    });
  }

  SweepResult result;
  result.axis_names = grid.axis_names();
  result.replications = replications;
  result.total_runs = total;
  result.jobs = pool_size;
  result.points.reserve(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    PointResult point_result;
    point_result.result =
        system::aggregate_runs(std::move(runs[p]), options_.confidence);
    point_result.point = std::move(points[p]);
    result.points.push_back(std::move(point_result));
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace dsrt::engine
