#include "dsrt/engine/emit.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace dsrt::engine {

namespace {

std::string num(double v) {
  std::ostringstream os;
  os << v;  // shortest round-trippable-enough form; JSON has no NaN/Inf
  const std::string s = os.str();
  return (s == "nan" || s == "inf" || s == "-inf") ? "null" : s;
}

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

std::string estimate_json(const stats::Estimate& e) {
  return "{\"mean\":" + num(e.mean) + ",\"half_width\":" + num(e.half_width) +
         "}";
}

std::string ci(const stats::Estimate& e) {
  return stats::Table::percent(e.mean, 1) + " +- " +
         stats::Table::percent(e.half_width, 1);
}

}  // namespace

stats::Table sweep_table(const SweepResult& sweep) {
  std::vector<std::string> headers = sweep.axis_names;
  for (const char* h : {"MD_local(%)", "MD_global(%)", "MD_overall(%)",
                        "resp_local", "resp_global", "util(%)"})
    headers.push_back(h);
  stats::Table table(std::move(headers));

  for (const PointResult& pr : sweep.points) {
    std::vector<std::string> row = pr.point.labels;
    row.push_back(ci(pr.result.md_local));
    row.push_back(ci(pr.result.md_global));
    row.push_back(ci(pr.result.md_overall));
    row.push_back(stats::Table::with_ci(pr.result.response_local.mean,
                                        pr.result.response_local.half_width,
                                        3));
    row.push_back(stats::Table::with_ci(pr.result.response_global.mean,
                                        pr.result.response_global.half_width,
                                        3));
    row.push_back(stats::Table::percent(pr.result.utilization.mean, 1));
    table.add_row(std::move(row));
  }
  return table;
}

void write_sweep_csv(const SweepResult& sweep, std::ostream& os) {
  // Probed sweeps get one extra RFC-4180-quoted column holding the pooled
  // counters as a JSON object (metric sets can differ across points, e.g.
  // placement counters on jsq points only, so fixed columns don't fit).
  bool any_counters = false;
  for (const PointResult& pr : sweep.points)
    any_counters = any_counters || !pr.result.counters.empty();
  for (const std::string& name : sweep.axis_names) os << name << ',';
  os << "md_local,md_local_hw,md_global,md_global_hw,md_overall,"
        "md_overall_hw,resp_local,resp_local_hw,resp_global,resp_global_hw,"
        "utilization,utilization_hw";
  if (any_counters) os << ",counters";
  os << '\n';
  for (const PointResult& pr : sweep.points) {
    for (const std::string& label : pr.point.labels) os << label << ',';
    const auto& r = pr.result;
    os << r.md_local.mean << ',' << r.md_local.half_width << ','
       << r.md_global.mean << ',' << r.md_global.half_width << ','
       << r.md_overall.mean << ',' << r.md_overall.half_width << ','
       << r.response_local.mean << ',' << r.response_local.half_width << ','
       << r.response_global.mean << ',' << r.response_global.half_width << ','
       << r.utilization.mean << ',' << r.utilization.half_width;
    if (any_counters) {
      os << ',' << '"';
      for (char c : r.counters.json()) {
        os << c;
        if (c == '"') os << c;  // RFC 4180: double embedded quotes
      }
      os << '"';
    }
    os << '\n';
  }
}

stats::Table pivot_table(
    const SweepResult& sweep,
    const std::function<std::string(const PointResult&)>& cell) {
  if (sweep.axis_names.size() != 2)
    throw std::invalid_argument("pivot_table: sweep must have exactly 2 axes");

  // Recover the axis value lists from the points' coordinates.
  std::vector<std::string> row_labels, col_labels;
  for (const PointResult& pr : sweep.points) {
    const std::size_t i0 = pr.point.indices[0];
    const std::size_t i1 = pr.point.indices[1];
    if (i0 >= row_labels.size()) row_labels.resize(i0 + 1);
    if (i1 >= col_labels.size()) col_labels.resize(i1 + 1);
    row_labels[i0] = pr.point.labels[0];
    col_labels[i1] = pr.point.labels[1];
  }

  // A zipped 2-axis sweep has diagonal coordinates only; pivoting it would
  // render a mostly-empty matrix that looks like missing data.
  if (sweep.points.size() != row_labels.size() * col_labels.size())
    throw std::invalid_argument(
        "pivot_table: sweep does not cover the full cartesian grid "
        "(zipped sweep?)");

  std::vector<std::string> headers = {sweep.axis_names[0]};
  headers.insert(headers.end(), col_labels.begin(), col_labels.end());
  stats::Table table(std::move(headers));

  std::vector<std::vector<std::string>> cells(
      row_labels.size(), std::vector<std::string>(col_labels.size()));
  for (const PointResult& pr : sweep.points)
    cells[pr.point.indices[0]][pr.point.indices[1]] = cell(pr);
  for (std::size_t i = 0; i < row_labels.size(); ++i) {
    std::vector<std::string> row = {row_labels[i]};
    row.insert(row.end(), cells[i].begin(), cells[i].end());
    table.add_row(std::move(row));
  }
  return table;
}

std::string sweep_json(const SweepResult& sweep) {
  std::ostringstream os;
  os << "{\"axes\":[";
  for (std::size_t i = 0; i < sweep.axis_names.size(); ++i)
    os << (i ? "," : "") << quoted(sweep.axis_names[i]);
  os << "],\"replications\":" << sweep.replications
     << ",\"jobs\":" << sweep.jobs
     << ",\"wall_seconds\":" << num(sweep.wall_seconds) << ",\"points\":[";
  for (std::size_t i = 0; i < sweep.points.size(); ++i) {
    const PointResult& pr = sweep.points[i];
    os << (i ? "," : "") << "{\"labels\":[";
    for (std::size_t j = 0; j < pr.point.labels.size(); ++j)
      os << (j ? "," : "") << quoted(pr.point.labels[j]);
    os << "],\"seed\":" << pr.point.config.seed
       << ",\"md_local\":" << estimate_json(pr.result.md_local)
       << ",\"md_global\":" << estimate_json(pr.result.md_global)
       << ",\"md_overall\":" << estimate_json(pr.result.md_overall)
       << ",\"response_local\":" << estimate_json(pr.result.response_local)
       << ",\"response_global\":" << estimate_json(pr.result.response_global)
       << ",\"utilization\":" << estimate_json(pr.result.utilization);
    if (!pr.result.counters.empty())
      os << ",\"counters\":" << pr.result.counters.json();
    os << ",\"runs\":[";
    for (std::size_t r = 0; r < pr.result.runs.size(); ++r) {
      const auto& m = pr.result.runs[r];
      os << (r ? "," : "") << "{\"md_local\":" << num(m.local.missed.value())
         << ",\"md_global\":" << num(m.global.missed.value())
         << ",\"finished_local\":" << m.local.missed.trials()
         << ",\"finished_global\":" << m.global.missed.trials()
         << ",\"events\":" << m.events << "}";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

std::string bench_artifact_json(const std::string& name,
                                const SweepResult& sweep) {
  std::ostringstream os;
  os << "{\"name\":" << quoted(name)
     << ",\"points\":" << sweep.points.size()
     << ",\"replications\":" << sweep.replications
     << ",\"total_runs\":" << sweep.total_runs
     << ",\"jobs\":" << sweep.jobs
     << ",\"wall_seconds\":" << num(sweep.wall_seconds)
     << ",\"runs_per_second\":" << num(sweep.runs_per_second());
  // Headline result grid, so a BENCH_* artifact alone can back claims like
  // "jsq-pex beats static on MD_overall at load 0.85" without re-running
  // the sweep (the full-fidelity per-replication data stays in the
  // --emit=json file).
  os << ",\"axes\":[";
  for (std::size_t a = 0; a < sweep.axis_names.size(); ++a)
    os << (a ? "," : "") << quoted(sweep.axis_names[a]);
  os << "],\"results\":[";
  for (std::size_t i = 0; i < sweep.points.size(); ++i) {
    const PointResult& pr = sweep.points[i];
    os << (i ? "," : "") << "{\"labels\":[";
    for (std::size_t a = 0; a < pr.point.labels.size(); ++a)
      os << (a ? "," : "") << quoted(pr.point.labels[a]);
    os << "],\"md_local\":" << num(pr.result.md_local.mean)
       << ",\"md_global\":" << num(pr.result.md_global.mean)
       << ",\"md_overall\":" << num(pr.result.md_overall.mean);
    if (!pr.result.counters.empty())
      os << ",\"counters\":" << pr.result.counters.json();
    os << "}";
  }
  os << "]}\n";
  return os.str();
}

std::string microbench_json(const std::string& name,
                            const std::vector<BenchEntry>& entries) {
  std::ostringstream os;
  os << "{\"name\":" << quoted(name) << ",\"entries\":[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const BenchEntry& e = entries[i];
    os << (i ? "," : "") << "{\"name\":" << quoted(e.name)
       << ",\"unit\":" << quoted(e.unit) << ",\"items\":" << num(e.items)
       << ",\"wall_seconds\":" << num(e.wall_seconds)
       << ",\"rate\":" << num(e.rate()) << "}";
  }
  os << "]}\n";
  return os.str();
}

std::string write_microbench_artifact(const std::string& name,
                                      const std::vector<BenchEntry>& entries,
                                      const std::string& out_dir) {
  const std::string path = out_dir + "/BENCH_" + name + ".json";
  std::ofstream file(path);
  if (!file)
    throw std::runtime_error("write_microbench_artifact: cannot open " + path);
  file << microbench_json(name, entries);
  if (!file.good())
    throw std::runtime_error("write_microbench_artifact: write failed for " +
                             path);
  return path;
}

std::string write_bench_artifact(const std::string& name,
                                 const SweepResult& sweep,
                                 const std::string& out_dir) {
  const std::string path = out_dir + "/BENCH_" + name + ".json";
  std::ofstream file(path);
  if (!file)
    throw std::runtime_error("write_bench_artifact: cannot open " + path);
  file << bench_artifact_json(name, sweep);
  if (!file.good())
    throw std::runtime_error("write_bench_artifact: write failed for " +
                             path);
  return path;
}

void ensure_writable_dir(const std::string& out_dir) {
  const std::string probe = out_dir + "/.dsrt_write_probe";
  {
    std::ofstream file(probe);
    if (!file)
      throw std::runtime_error("output directory '" + out_dir +
                               "' is not writable");
  }
  std::remove(probe.c_str());
}

std::vector<std::string> write_sweep_files(const std::string& name,
                                           const SweepResult& sweep,
                                           bool csv, bool json,
                                           const std::string& out_dir) {
  std::vector<std::string> written;
  if (csv) {
    const std::string path = out_dir + "/" + name + ".csv";
    std::ofstream file(path);
    if (!file)
      throw std::runtime_error("write_sweep_files: cannot open " + path);
    write_sweep_csv(sweep, file);
    if (!file.good())
      throw std::runtime_error("write_sweep_files: write failed for " + path);
    written.push_back(path);
  }
  if (json) {
    const std::string path = out_dir + "/" + name + ".json";
    std::ofstream file(path);
    if (!file)
      throw std::runtime_error("write_sweep_files: cannot open " + path);
    file << sweep_json(sweep) << '\n';
    if (!file.good())
      throw std::runtime_error("write_sweep_files: write failed for " + path);
    written.push_back(path);
  }
  return written;
}

}  // namespace dsrt::engine
