#include "dsrt/trace/gantt.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>
#include <string>

namespace dsrt::trace {

GanttChart::GanttChart(sim::Time from, sim::Time to, std::size_t columns)
    : from_(from), to_(to), columns_(columns) {
  if (!(to > from)) throw std::invalid_argument("GanttChart: empty window");
  if (columns == 0) throw std::invalid_argument("GanttChart: zero columns");
}

void GanttChart::on_job_disposed(const sched::Job& job, sim::Time now,
                                 sched::JobOutcome outcome) {
  if (outcome != sched::JobOutcome::Completed) return;
  const sim::Time start = now - job.exec;
  if (now <= from_ || start >= to_) return;
  intervals_.push_back(Interval{job.node, start, now, job.cls});
}

void GanttChart::render(std::ostream& os, std::size_t node_count) const {
  const double column_span = (to_ - from_) / static_cast<double>(columns_);
  for (std::size_t node = 0; node < node_count; ++node) {
    // Per-column class presence masks: bit 0 local, bit 1 global.
    std::vector<unsigned> mask(columns_, 0);
    for (const auto& iv : intervals_) {
      if (iv.node != node) continue;
      const double lo = std::max(iv.start, from_);
      const double hi = std::min(iv.end, to_);
      auto first = static_cast<std::size_t>((lo - from_) / column_span);
      auto last = static_cast<std::size_t>((hi - from_) / column_span);
      first = std::min(first, columns_ - 1);
      last = std::min(last, columns_ - 1);
      for (std::size_t c = first; c <= last; ++c)
        mask[c] |= (iv.cls == core::TaskClass::Local ? 1u : 2u);
    }
    std::string row(columns_, '.');
    for (std::size_t c = 0; c < columns_; ++c) {
      if (mask[c] == 1) row[c] = 'L';
      if (mask[c] == 2) row[c] = 'G';
      if (mask[c] == 3) row[c] = '*';
    }
    os << "node " << node << " |" << row << "|\n";
  }
  os << "        t=" << from_ << " .. " << to_
     << "   ('.'=idle 'L'=local 'G'=global '*'=both)\n";
}

}  // namespace dsrt::trace
