#include "dsrt/trace/recorder.hpp"

#include <iomanip>
#include <ostream>

namespace dsrt::trace {

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::LocalSubmit: return "local-submit";
    case TraceKind::GlobalArrival: return "global-arrival";
    case TraceKind::SubtaskSubmit: return "subtask-submit";
    case TraceKind::JobComplete: return "job-complete";
    case TraceKind::JobAbort: return "job-abort";
    case TraceKind::GlobalFinish: return "global-finish";
    case TraceKind::GlobalMiss: return "global-miss";
    case TraceKind::GlobalAbort: return "global-abort";
  }
  return "?";
}

Recorder::Recorder(std::size_t capacity, Overflow mode)
    : capacity_(capacity), mode_(mode) {
  events_.reserve(capacity < 1024 ? capacity : 1024);
}

void Recorder::push(TraceEvent event) {
  if (events_.size() < capacity_) {
    events_.push_back(event);
    return;
  }
  ++dropped_;
  if (mode_ == Overflow::KeepTail && capacity_ > 0) {
    events_[head_] = event;  // overwrite the oldest kept event
    head_ = (head_ + 1) % capacity_;
  }
}

void Recorder::on_local_submitted(core::NodeId node, const sched::Job& job,
                                  sim::Time now) {
  push({TraceKind::LocalSubmit, now, 0, node, job.deadline, 0});
}

void Recorder::on_global_arrival(core::TaskId task, const core::TaskSpec&,
                                 sim::Time now, sim::Time deadline) {
  push({TraceKind::GlobalArrival, now, task, 0, deadline, 0});
}

void Recorder::on_subtask_submitted(core::TaskId task,
                                    const core::LeafSubmission& submission,
                                    sim::Time now) {
  push({TraceKind::SubtaskSubmit, now, task, submission.node,
        submission.deadline, submission.sibling_index});
}

void Recorder::on_job_disposed(const sched::Job& job, sim::Time now,
                               sched::JobOutcome outcome) {
  push({outcome == sched::JobOutcome::Completed ? TraceKind::JobComplete
                                                : TraceKind::JobAbort,
        now, job.task, job.node, job.deadline, 0});
}

void Recorder::on_global_finished(core::TaskId task, sim::Time now,
                                  bool missed) {
  push({missed ? TraceKind::GlobalMiss : TraceKind::GlobalFinish, now, task,
        0, 0, 0});
}

void Recorder::on_global_aborted(core::TaskId task, sim::Time now) {
  push({TraceKind::GlobalAbort, now, task, 0, 0, 0});
}

void Recorder::clear() {
  events_.clear();
  head_ = 0;
  dropped_ = 0;
}

std::vector<TraceEvent> Recorder::ordered() const {
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  const std::size_t start = head();
  for (std::size_t i = 0; i < events_.size(); ++i)
    out.push_back(events_[(start + i) % events_.size()]);
  return out;
}

void Recorder::print(std::ostream& os, std::size_t limit) const {
  if (dropped_ > 0) {
    os << "[" << dropped_ << " events "
       << (mode_ == Overflow::KeepTail ? "overwritten (showing tail)"
                                       : "dropped (showing head)")
       << "]\n";
  }
  const std::size_t start = head();
  std::size_t shown = 0;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[(start + i) % events_.size()];
    if (shown++ >= limit) {
      os << "... (" << events_.size() - limit << " more)\n";
      break;
    }
    os << std::fixed << std::setprecision(3) << std::setw(12) << e.at << "  "
       << std::left << std::setw(16) << to_string(e.kind) << std::right;
    if (e.task != 0) os << " task=" << e.task;
    if (e.kind == TraceKind::SubtaskSubmit)
      os << " stage=" << e.stage << " node=" << e.node;
    if (e.kind == TraceKind::LocalSubmit) os << " node=" << e.node;
    if (e.deadline != 0) os << " dl=" << e.deadline;
    os << '\n';
  }
}

std::vector<TraceEvent> Recorder::task_timeline(core::TaskId task) const {
  std::vector<TraceEvent> out;
  const std::size_t start = head();
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[(start + i) % events_.size()];
    if (e.task == task) out.push_back(e);
  }
  return out;
}

}  // namespace dsrt::trace
