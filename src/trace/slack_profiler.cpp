#include "dsrt/trace/slack_profiler.hpp"

#include <algorithm>

namespace dsrt::trace {

SlackProfiler::SlackProfiler(std::size_t max_stages)
    : max_stages_(std::max<std::size_t>(1, max_stages)) {}

std::size_t SlackProfiler::bucket(std::size_t stage) const {
  return std::min(stage, max_stages_ - 1);
}

void SlackProfiler::on_subtask_submitted(
    core::TaskId task, const core::LeafSubmission& submission, sim::Time now) {
  const std::size_t stage = bucket(submission.sibling_index);
  if (stages_.size() <= stage) stages_.resize(stage + 1);
  stages_[stage].allotted_window.add(submission.deadline - now);
  pending_[{task, submission.leaf}] = stage;
}

void SlackProfiler::on_job_disposed(const sched::Job& job, sim::Time now,
                                    sched::JobOutcome outcome) {
  if (job.cls != core::TaskClass::Global) return;
  const auto it = pending_.find({job.task, job.leaf});
  if (it == pending_.end()) return;
  const std::size_t stage = it->second;
  pending_.erase(it);
  if (outcome != sched::JobOutcome::Completed) {
    stages_[stage].virtual_miss.add(true);
    return;
  }
  stages_[stage].wait.add(now - job.release - job.exec);
  stages_[stage].response.add(now - job.release);
  stages_[stage].virtual_miss.add(now > job.deadline);
}

void SlackProfiler::clear() {
  stages_.clear();
  pending_.clear();
}

}  // namespace dsrt::trace
