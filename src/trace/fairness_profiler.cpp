#include "dsrt/trace/fairness_profiler.hpp"

namespace dsrt::trace {

void FairnessProfiler::on_global_arrival(core::TaskId task,
                                         const core::TaskSpec& spec,
                                         sim::Time now, sim::Time) {
  pending_[task] = Pending{spec.leaf_count(), now};
}

void FairnessProfiler::on_global_finished(core::TaskId task, sim::Time now,
                                          bool missed) {
  const auto it = pending_.find(task);
  if (it == pending_.end()) return;
  SizeStats& s = stats_[it->second.size];
  s.missed.add(missed);
  s.response.add(now - it->second.arrival);
  pending_.erase(it);
}

void FairnessProfiler::on_global_aborted(core::TaskId task, sim::Time) {
  const auto it = pending_.find(task);
  if (it == pending_.end()) return;
  stats_[it->second.size].missed.add(true);
  pending_.erase(it);
}

void FairnessProfiler::clear() {
  stats_.clear();
  pending_.clear();
}

}  // namespace dsrt::trace
