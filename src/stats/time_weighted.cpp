#include "dsrt/stats/time_weighted.hpp"

namespace dsrt::stats {

TimeWeighted::TimeWeighted(sim::Time start, double value)
    : start_(start), last_(start), value_(value) {}

void TimeWeighted::update(sim::Time now, double value) {
  if (now < last_) now = last_;
  integral_ += value_ * (now - last_);
  last_ = now;
  value_ = value;
}

double TimeWeighted::mean(sim::Time now) const {
  if (now < last_) now = last_;
  const sim::Time span = now - start_;
  if (span <= 0) return value_;
  return (integral_ + value_ * (now - last_)) / span;
}

void TimeWeighted::reset(sim::Time now) {
  start_ = now;
  last_ = now;
  integral_ = 0;
}

}  // namespace dsrt::stats
