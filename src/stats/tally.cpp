#include "dsrt/stats/tally.hpp"

#include <algorithm>
#include <cmath>

namespace dsrt::stats {

void Tally::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Tally::merge(const Tally& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Tally::reset() { *this = Tally{}; }

double Tally::variance() const {
  if (count_ < 2) return 0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Tally::stddev() const { return std::sqrt(variance()); }

double Tally::std_error() const {
  if (count_ == 0) return 0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

void Ratio::add(bool hit) {
  ++trials_;
  if (hit) ++hits_;
}

void Ratio::merge(const Ratio& other) {
  trials_ += other.trials_;
  hits_ += other.hits_;
}

void Ratio::reset() { *this = Ratio{}; }

double Ratio::value() const {
  if (trials_ == 0) return 0;
  return static_cast<double>(hits_) / static_cast<double>(trials_);
}

}  // namespace dsrt::stats
