#include "dsrt/stats/report.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace dsrt::stats {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table: row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::cell(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::percent(double v, int precision) {
  return cell(100.0 * v, precision);
}

std::string Table::with_ci(double mean, double half_width, int precision) {
  return cell(mean, precision) + " +- " + cell(half_width, precision);
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2)
         << cells[c];
    }
    os << '\n';
  };
  line(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c)
    rule += std::string(width[c], '-') + "  ";
  os << rule << '\n';
  for (const auto& row : rows_) line(row);
}

void Table::print_csv(std::ostream& os) const {
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  line(headers_);
  for (const auto& row : rows_) line(row);
}

}  // namespace dsrt::stats
