#include "dsrt/stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dsrt::stats {

Histogram::Histogram(double width, std::size_t bins) : width_(width) {
  if (width <= 0) throw std::invalid_argument("Histogram: width <= 0");
  if (bins == 0) throw std::invalid_argument("Histogram: no bins");
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  ++count_;
  if (x < 0) x = 0;
  const auto bin = static_cast<std::size_t>(x / width_);
  if (bin >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[bin];
}

void Histogram::merge(const Histogram& other) {
  if (other.width_ != width_ || other.counts_.size() != counts_.size())
    throw std::invalid_argument("Histogram::merge: geometry mismatch");
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  overflow_ += other.overflow_;
  count_ += other.count_;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  overflow_ = 0;
  count_ = 0;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double inside = (target - cumulative) /
                            static_cast<double>(counts_[i]);
      return (static_cast<double>(i) + inside) * width_;
    }
    cumulative = next;
  }
  // Quantile falls in the overflow bucket: report the covered maximum.
  return width_ * static_cast<double>(counts_.size());
}

double Histogram::fraction_above(double threshold) const {
  if (count_ == 0) return 0;
  std::uint64_t above = overflow_;
  // Count bins lying entirely at-or-above the threshold: a threshold on a
  // bin boundary includes that bin; mid-bin thresholds round up (the
  // partially-covered bin is excluded — bin-resolution semantics).
  const auto first_bin =
      threshold < 0 ? std::size_t{0}
                    : static_cast<std::size_t>(std::ceil(threshold / width_));
  for (std::size_t i = first_bin; i < counts_.size(); ++i)
    above += counts_[i];
  return static_cast<double>(above) / static_cast<double>(count_);
}

}  // namespace dsrt::stats
