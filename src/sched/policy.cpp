#include "dsrt/sched/policy.hpp"

#include <stdexcept>
#include <string>

namespace dsrt::sched {

PolicyPtr make_edf() { return std::make_shared<EarliestDeadlineFirst>(); }
PolicyPtr make_mlf() { return std::make_shared<MinimumLaxityFirst>(); }
PolicyPtr make_fcfs() { return std::make_shared<FirstComeFirstServed>(); }
PolicyPtr make_sjf() { return std::make_shared<ShortestJobFirst>(); }

PolicyPtr policy_by_name(std::string_view name) {
  if (name == "EDF") return make_edf();
  if (name == "MLF") return make_mlf();
  if (name == "FCFS") return make_fcfs();
  if (name == "SJF") return make_sjf();
  throw std::invalid_argument("unknown policy: " + std::string(name));
}

}  // namespace dsrt::sched
