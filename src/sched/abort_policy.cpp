#include "dsrt/sched/abort_policy.hpp"

#include <stdexcept>
#include <string>

namespace dsrt::sched {

AbortPolicyPtr make_no_abort() { return std::make_shared<NoAbort>(); }
AbortPolicyPtr make_abort_tardy() {
  return std::make_shared<AbortTardyOnDispatch>();
}
AbortPolicyPtr make_abort_ultimate() {
  return std::make_shared<AbortTardyUltimate>();
}
AbortPolicyPtr make_abort_hopeless() {
  return std::make_shared<AbortHopelessOnDispatch>();
}

AbortPolicyPtr abort_policy_by_name(std::string_view name) {
  if (name == "NoAbort") return make_no_abort();
  if (name == "AbortTardy") return make_abort_tardy();
  if (name == "AbortUltimate") return make_abort_ultimate();
  if (name == "AbortHopeless") return make_abort_hopeless();
  throw std::invalid_argument("unknown abort policy: " + std::string(name));
}

}  // namespace dsrt::sched
