#include "dsrt/sched/node.hpp"

#include <stdexcept>
#include <utility>

namespace dsrt::sched {

namespace {

int class_rank(core::PriorityClass priority) {
  // Elevated (Globals First) jobs always dispatch before Normal jobs.
  return priority == core::PriorityClass::Elevated ? 0 : 1;
}

}  // namespace

Node::Node(core::NodeId id, sim::Simulator& sim, PolicyPtr policy,
           AbortPolicyPtr abort_policy, PreemptionMode preemption)
    : id_(id),
      sim_(sim),
      policy_(std::move(policy)),
      abort_policy_(std::move(abort_policy)),
      preemption_(preemption),
      busy_signal_(sim.now(), 0),
      queue_signal_(sim.now(), 0) {
  if (!policy_) throw std::invalid_argument("Node: null policy");
  if (!abort_policy_) throw std::invalid_argument("Node: null abort policy");
  policy_is_edf_ =
      dynamic_cast<const EarliestDeadlineFirst*>(policy_.get()) != nullptr;
  abort_is_none_ = dynamic_cast<const NoAbort*>(abort_policy_.get()) != nullptr;
  queue_.reserve(64);
}

void Node::set_completion_handler(CompletionHandler handler) {
  handler_ = std::move(handler);
}

void Node::dispose(const Job& job, JobOutcome outcome) {
  if (delegate_) {
    delegate_(delegate_ctx_, job, sim_.now(), outcome);
    return;
  }
  if (handler_) handler_(job, sim_.now(), outcome);
}

Node::QueueKey Node::key_for(const Job& job) {
  const double key = policy_is_edf_ ? job.deadline : policy_->key(job);
  return {{class_rank(job.priority), key}, arrival_seq_++};
}

void Node::submit(Job job) {
  ++submitted_;
  if (!up_) {
    // Fail fast: a down node takes no work. The job never touches the
    // queue or the load account, so the synchronous Failed disposal is the
    // only trace it leaves — the process manager's retry path picks it up
    // through its re-entrant disposal queue.
    ++failed_;
    job.release = sim_.now();
    dispose(job, JobOutcome::Failed);
    return;
  }
  job.release = sim_.now();
  if (job.remaining <= 0) job.remaining = job.exec;
  if (load_) load_->add_backlog(job.pex);
  QueueKey key = key_for(job);
  if (!in_service_) {
    // Submitting to an idle server is a dispatch instant, so the abort
    // policy screens here as well.
    if (!abort_is_none_ && abort_policy_->should_abort(job, sim_.now())) {
      ++aborted_;
      if (load_) load_->remove_backlog(job.pex);
      dispose(job, JobOutcome::Aborted);
      dispatch_next();  // an aborted arrival may still free a queued job
      return;
    }
    start_service(std::move(job), key);
    return;
  }
  if (preemption_ == PreemptionMode::Preemptive &&
      QueueOrder{}(key, in_service_key_)) {
    // The newcomer outranks the job in service: suspend it with its
    // remaining demand and give the server to the newcomer.
    Job suspended = std::move(*in_service_);
    in_service_.reset();
    ++service_token_;  // invalidate the scheduled completion event
    suspended.remaining -= sim_.now() - service_started_;
    if (suspended.remaining < 0) suspended.remaining = 0;
    ++preemptions_;
    enqueue(std::move(suspended), in_service_key_);
    start_service(std::move(job), key);
    return;
  }
  enqueue(std::move(job), key);
}

void Node::enqueue(Job job, QueueKey key) {
  // Sift up with a hole: parents shift down until the insertion slot is
  // found, so the new entry is materialized exactly once.
  std::size_t i = queue_.size();
  queue_.emplace_back();
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!QueueOrder{}(key, queue_[parent].key)) break;
    queue_[i] = std::move(queue_[parent]);
    i = parent;
  }
  queue_[i].key = key;
  queue_[i].job = std::move(job);
  if (queue_.size() > max_queue_) max_queue_ = queue_.size();
  queue_signal_.update(sim_.now(), static_cast<double>(queue_.size()));
  if (load_) load_->set_queue_length(queue_.size());
}

Node::ReadyEntry Node::pop_ready() {
  ReadyEntry top = std::move(queue_.front());
  ReadyEntry last = std::move(queue_.back());
  queue_.pop_back();
  const std::size_t n = queue_.size();
  if (n > 0) {
    // Sift down with a hole: pull the better child up until `last` (the
    // displaced tail entry) finds its slot.
    std::size_t i = 0;
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n &&
          QueueOrder{}(queue_[child + 1].key, queue_[child].key))
        ++child;
      if (!QueueOrder{}(queue_[child].key, last.key)) break;
      queue_[i] = std::move(queue_[child]);
      i = child;
    }
    queue_[i] = std::move(last);
  }
  return top;
}

void Node::start_service(Job job, QueueKey key) {
  in_service_ = std::move(job);
  in_service_key_ = key;
  service_started_ = sim_.now();
  busy_signal_.update(sim_.now(), 1);
  if (load_) load_->set_busy(sim_.now(), true);
  const std::uint64_t token = ++service_token_;
  sim_.in(in_service_->remaining,
          [this, token] { on_service_complete(token); });
}

void Node::on_service_complete(std::uint64_t service_token) {
  if (service_token != service_token_ || !in_service_) return;  // stale
  Job done = std::move(*in_service_);
  in_service_.reset();
  busy_signal_.update(sim_.now(), 0);
  done.remaining = 0;
  ++completed_;
  if (load_) {
    load_->remove_backlog(done.pex);
    load_->set_busy(sim_.now(), false);
  }
  dispose(done, JobOutcome::Completed);
  dispatch_next();
}

void Node::dispatch_next() {
  while (!in_service_ && !queue_.empty()) {
    ReadyEntry entry = pop_ready();
    const QueueKey key = entry.key;
    Job job = std::move(entry.job);
    queue_signal_.update(sim_.now(), static_cast<double>(queue_.size()));
    if (load_) load_->set_queue_length(queue_.size());
    if (!abort_is_none_ && abort_policy_->should_abort(job, sim_.now())) {
      ++aborted_;
      if (load_) load_->remove_backlog(job.pex);
      dispose(job, JobOutcome::Aborted);
      continue;  // keep draining until a servable job is found
    }
    start_service(std::move(job), key);
  }
  if (!in_service_) {
    busy_signal_.update(sim_.now(), 0);
    if (load_) load_->set_busy(sim_.now(), false);
  }
}

void Node::fail(sim::Time now) {
  if (!up_) return;
  up_ = false;  // set first so re-entrant submits fail fast
  if (in_service_) {
    Job victim = std::move(*in_service_);
    in_service_.reset();
    ++service_token_;  // the scheduled completion event becomes a stale no-op
    busy_signal_.update(now, 0);
    ++failed_;
    if (load_) {
      load_->remove_backlog(victim.pex);
      load_->set_busy(now, false);
    }
    dispose(victim, JobOutcome::Failed);
  }
  // Drain the ready queue in dispatch order so the disposal sequence — and
  // everything downstream of it (retry placement draws) — is deterministic.
  while (!queue_.empty()) {
    Job victim = std::move(pop_ready().job);
    ++failed_;
    if (load_) load_->remove_backlog(victim.pex);
    dispose(victim, JobOutcome::Failed);
  }
  queue_signal_.update(now, 0);
  if (load_) {
    load_->set_queue_length(0);
    load_->set_down(true);
  }
}

void Node::recover(sim::Time now) {
  if (up_) return;
  up_ = true;
  busy_signal_.update(now, 0);
  queue_signal_.update(now, 0);
  if (load_) load_->set_down(false);
}

void Node::reset_observation(sim::Time now) {
  busy_signal_.reset(now);
  busy_signal_.update(now, in_service_ ? 1 : 0);
  queue_signal_.reset(now);
  queue_signal_.update(now, static_cast<double>(queue_.size()));
}

}  // namespace dsrt::sched
